package analysis

import (
	"fmt"
	"math/rand"
	"testing"

	"tameir/internal/core"
	"tameir/internal/ir"
)

// Property: ComputeKnownBits is sound on concrete executions — for any
// randomly generated expression DAG and any concrete inputs, the
// value's bits agree with the analysis (bits claimed zero are zero,
// bits claimed one are one). Note this checks the analysis's
// *concrete* contract; its poison caveat (§5.6) is what
// IsKnownToBeAPowerOfTwo's NonPoison field tracks.
func TestKnownBitsSoundOnRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	ops := []ir.Op{ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpAdd, ir.OpMul, ir.OpShl, ir.OpLShr}

	for iter := 0; iter < 300; iter++ {
		// Build a random straight-line function over i8 with constant
		// and parameter operands.
		a, b := ir.NewParam("a", ir.I8), ir.NewParam("b", ir.I8)
		f := ir.NewFunc("kb", ir.I8, a, b)
		bd := ir.NewBuilder(f.NewBlock("entry"))
		vals := []ir.Value{a, b,
			ir.ConstInt(ir.I8, uint64(rng.Intn(256))),
			ir.ConstInt(ir.I8, uint64(rng.Intn(256)))}
		n := 1 + rng.Intn(6)
		var last *ir.Instr
		for i := 0; i < n; i++ {
			op := ops[rng.Intn(len(ops))]
			x := vals[rng.Intn(len(vals))]
			var y ir.Value
			if op.IsShift() {
				y = ir.ConstInt(ir.I8, uint64(rng.Intn(8))) // in-range shift
			} else {
				y = vals[rng.Intn(len(vals))]
			}
			last = bd.Binop(op, 0, x, y)
			vals = append(vals, last)
		}
		bd.Ret(last)
		if err := ir.Verify(f, ir.VerifyFreeze); err != nil {
			t.Fatal(err)
		}

		kb := ComputeKnownBits(last)
		if kb.Zero&kb.One != 0 {
			t.Fatalf("iteration %d: contradictory known bits %+v\n%s", iter, kb, f)
		}
		for trial := 0; trial < 8; trial++ {
			av := uint64(rng.Intn(256))
			bv := uint64(rng.Intn(256))
			out := core.Exec(f,
				[]core.Value{core.VC(ir.I8, av), core.VC(ir.I8, bv)},
				core.ZeroOracle{}, core.FreezeOptions())
			if out.Kind != core.OutRet || !out.Val.IsConcrete() {
				t.Fatalf("iteration %d: unexpected outcome %v", iter, out)
			}
			v := out.Val.Uint()
			if v&kb.Zero != 0 {
				t.Fatalf("iteration %d: value %#x has a bit claimed zero (%#x)\n%s", iter, v, kb.Zero, f)
			}
			if v&kb.One != kb.One {
				t.Fatalf("iteration %d: value %#x misses a bit claimed one (%#x)\n%s", iter, v, kb.One, f)
			}
		}
	}
}

// Property: IsGuaranteedNotToBePoison never claims non-poison for an
// expression that can actually evaluate to poison. Random expression
// DAGs with nsw/over-shift hazards and poison-able parameters are
// enumerated exhaustively at i2.
func TestNotPoisonSoundOnRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	ops := []ir.Op{ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpAdd, ir.OpMul, ir.OpShl}

	for iter := 0; iter < 200; iter++ {
		a := ir.NewParam("a", ir.I2)
		f := ir.NewFunc("np", ir.I2, a)
		bd := ir.NewBuilder(f.NewBlock("entry"))
		vals := []ir.Value{a, ir.ConstInt(ir.I2, uint64(rng.Intn(4)))}
		var last ir.Value = a
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			op := ops[rng.Intn(len(ops))]
			var attrs ir.Attrs
			if (op == ir.OpAdd || op == ir.OpMul) && rng.Intn(2) == 0 {
				attrs = ir.NSW
			}
			x := vals[rng.Intn(len(vals))]
			y := vals[rng.Intn(len(vals))]
			if rng.Intn(3) == 0 {
				fz := bd.Freeze(x)
				vals = append(vals, fz)
				x = fz
			}
			in := bd.Binop(op, attrs, x, y)
			vals = append(vals, in)
			last = in
		}
		bd.Ret(last)

		claim := IsGuaranteedNotToBePoison(last)
		if !claim {
			continue // conservative answers are always fine
		}
		// Exhaustively check: no input (including poison) may produce
		// a poison result.
		for _, arg := range []core.Value{
			core.VC(ir.I2, 0), core.VC(ir.I2, 1), core.VC(ir.I2, 2), core.VC(ir.I2, 3),
			core.VPoison(ir.I2),
		} {
			o := core.NewEnumOracle(8, 16)
			for {
				o.Reset()
				out := core.Exec(f, []core.Value{arg}, o, core.FreezeOptions())
				if out.Kind == core.OutRet && out.Val.AnyPoison() {
					t.Fatalf("iteration %d: claimed non-poison but got %v on %v\n%s",
						iter, out, arg, f)
				}
				if !o.Next() {
					break
				}
			}
		}
	}
}

// Property: dominator-tree facts hold on random CFGs: the entry
// dominates every reachable block, immediate dominators dominate their
// children, and Dominates is transitive along idom chains.
func TestDomTreeInvariantsOnRandomCFGs(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for iter := 0; iter < 150; iter++ {
		f := randomCFG(rng, 2+rng.Intn(6))
		dt := NewDomTree(f)
		reach := Reachable(f)
		for b := range reach {
			if !dt.Dominates(f.Entry(), b) {
				t.Fatalf("iteration %d: entry does not dominate %s\n%s", iter, b.Name(), f)
			}
			if d := dt.IDom(b); d != nil {
				if !dt.StrictlyDominates(d, b) {
					t.Fatalf("iteration %d: idom(%s)=%s does not strictly dominate it", iter, b.Name(), d.Name())
				}
				// Every predecessor path must pass through the idom.
				for _, p := range f.Preds(b) {
					if reach[p] && !dt.Dominates(d, p) && p != b {
						t.Fatalf("iteration %d: idom(%s)=%s but pred %s bypasses it\n%s",
							iter, b.Name(), d.Name(), p.Name(), f)
					}
				}
			}
		}
	}
}

// randomCFG builds a random reducible-ish CFG with forward and back
// edges (back edges only to strictly earlier blocks).
func randomCFG(rng *rand.Rand, n int) *ir.Func {
	f := ir.NewFunc("g", ir.Void)
	c := ir.NewParam("c", ir.I1)
	f.Params = append(f.Params, c)
	blocks := make([]*ir.Block, n)
	for i := range blocks {
		blocks[i] = f.NewBlock(fmt.Sprintf("b%d", i))
	}
	for i, b := range blocks {
		bd := ir.NewBuilder(b)
		switch {
		case i == n-1 || rng.Intn(4) == 0:
			bd.Ret(nil)
		case rng.Intn(2) == 0:
			t1 := blocks[rng.Intn(n)]
			t2 := blocks[rng.Intn(n)]
			bd.CondBr(c, t1, t2)
		default:
			bd.Br(blocks[rng.Intn(n)])
		}
	}
	return f
}
