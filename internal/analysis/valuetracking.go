package analysis

import "tameir/internal/ir"

// IsGuaranteedNotToBePoison conservatively reports whether v can never
// be poison (nor, under legacy semantics, undef — the query is used to
// justify speculation, and undef is no safer there). Function
// parameters may always be poison; the paper's Section 10 notes LLVM
// could change that, which would strengthen this analysis.
//
// The walk memoizes per-value results, so shared subexpressions are
// classified once per query no matter how many paths reach them, and a
// deep-but-narrow chain (a tower of freezes, a long cast chain) cannot
// exhaust an arbitrary depth budget: the cost is linear in the distinct
// values reachable from v. For CFG-level facts (phis, loop-carried
// values), use AnalyzePoison instead.
func IsGuaranteedNotToBePoison(v ir.Value) bool {
	return notPoison(v, make(map[ir.Value]bool))
}

func notPoison(v ir.Value, memo map[ir.Value]bool) bool {
	if r, ok := memo[v]; ok {
		return r
	}
	// Seed the in-progress entry conservatively: a cyclic operand chain
	// (malformed IR, or a phi-free loop of uses) terminates with "may be
	// poison" instead of recursing forever.
	memo[v] = false
	r := notPoisonUncached(v, memo)
	memo[v] = r
	return r
}

func notPoisonUncached(v ir.Value, memo map[ir.Value]bool) bool {
	switch x := v.(type) {
	case *ir.Const, *ir.Global:
		return true
	case *ir.Undef, *ir.Poison:
		return false
	case *ir.VecConst:
		for _, e := range x.Elems {
			if !notPoison(e, memo) {
				return false
			}
		}
		return true
	case *ir.Param:
		return false
	case *ir.Instr:
		switch {
		case x.Op == ir.OpFreeze:
			return true
		case x.Op == ir.OpAlloca:
			return true
		case x.Op.IsBinop():
			// Poison-generating attributes can introduce poison even
			// from clean operands; shifts can over-shift.
			if x.Attrs != 0 {
				return false
			}
			if x.Op.IsShift() && !shiftAmountInRange(x) {
				return false
			}
			return notPoison(x.Arg(0), memo) && notPoison(x.Arg(1), memo)
		case x.Op == ir.OpICmp:
			return notPoison(x.Arg(0), memo) && notPoison(x.Arg(1), memo)
		case x.Op == ir.OpZExt, x.Op == ir.OpSExt, x.Op == ir.OpTrunc, x.Op == ir.OpBitcast:
			return notPoison(x.Arg(0), memo)
		case x.Op == ir.OpSelect:
			// Needs condition and both arms clean (the chosen arm is
			// input-dependent).
			return notPoison(x.Arg(0), memo) && notPoison(x.Arg(1), memo) && notPoison(x.Arg(2), memo)
		case x.Op == ir.OpGEP:
			if x.Attrs&ir.NSW != 0 {
				return false
			}
			return notPoison(x.Arg(0), memo) && notPoison(x.Arg(1), memo)
		case x.Op == ir.OpPhi:
			// Conservative: would need edge-sensitive reasoning.
			return false
		}
		return false
	}
	return false
}

func shiftAmountInRange(x *ir.Instr) bool {
	c, ok := x.Arg(1).(*ir.Const)
	return ok && c.Bits < uint64(x.Ty.Bits)
}

// IsSpeculatable reports whether executing in out of its original
// control-flow context can introduce UB or side effects. Divisions and
// remainders may trap (divisor zero or poison), memory operations may
// fault, calls may do anything — none are speculatable. This is the
// gate LICM uses (§3.2: hoisting 1/k past the k != 0 check was
// unsound precisely because udiv is not speculatable when k may be
// undef).
func IsSpeculatable(in *ir.Instr) bool {
	switch {
	case in.Op.IsDivRem():
		return false
	case in.Op.HasSideEffects():
		return false
	case in.Op == ir.OpLoad:
		return false
	case in.Op == ir.OpPhi:
		return false
	}
	return true
}

// IsSpeculatableWithNonPoisonDivisor refines IsSpeculatable for
// divisions whose divisor is provably non-zero AND non-poison — the
// "up to" API of §5.6 in action.
func IsSpeculatableWithNonPoisonDivisor(in *ir.Instr) bool {
	if !in.Op.IsDivRem() {
		return IsSpeculatable(in)
	}
	d := in.Arg(1)
	kb := ComputeKnownBits(d)
	nonZero := kb.One != 0
	if c, ok := d.(*ir.Const); ok {
		nonZero = c.Bits != 0
		// Signed division also traps on INT_MIN / -1; a constant
		// divisor of -1 is only safe for unsigned ops.
		if (in.Op == ir.OpSDiv || in.Op == ir.OpSRem) && c.IsAllOnes() {
			return false
		}
	} else if in.Op == ir.OpSDiv || in.Op == ir.OpSRem {
		// Non-constant divisor: the numerator could be INT_MIN and the
		// divisor -1; stay conservative.
		return false
	}
	return nonZero && IsGuaranteedNotToBePoison(d)
}
