// Package analysis provides the static analyses the optimizer passes
// rely on: CFG orderings, dominator trees, natural-loop detection,
// known-bits, and the poison-aware value-tracking queries whose API
// shape Section 5.6 of the paper discusses (results that hold only "up
// to" the analyzed values being non-poison).
package analysis

import "tameir/internal/ir"

// ReversePostorder returns the blocks of f reachable from the entry in
// reverse postorder (predecessors-mostly-before-successors; ideal for
// forward dataflow).
func ReversePostorder(f *ir.Func) []*ir.Block {
	seen := map[*ir.Block]bool{}
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs() {
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Reachable returns the set of blocks reachable from the entry.
func Reachable(f *ir.Func) map[*ir.Block]bool {
	seen := map[*ir.Block]bool{}
	work := []*ir.Block{f.Entry()}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		work = append(work, b.Succs()...)
	}
	return seen
}

// Preds builds the predecessor map for all blocks, counting each
// predecessor block once per distinct edge source.
func Preds(f *ir.Func) map[*ir.Block][]*ir.Block {
	m := make(map[*ir.Block][]*ir.Block, len(f.Blocks))
	for _, b := range f.Blocks {
		seen := map[*ir.Block]bool{}
		for _, s := range b.Succs() {
			if !seen[s] {
				seen[s] = true
				m[s] = append(m[s], b)
			}
		}
	}
	return m
}
