package minc

import "fmt"

// CKind discriminates MinC types.
type CKind uint8

const (
	CVoid CKind = iota
	CInt
	CPtr
	CArray
	CStruct
)

// CType is a MinC type.
type CType struct {
	Kind     CKind
	Bits     uint // CInt width
	Unsigned bool
	Elem     *CType // CPtr / CArray element
	Len      uint32 // CArray length
	Struct   *StructType
}

// Common types.
var (
	TyVoid  = &CType{Kind: CVoid}
	TyChar  = &CType{Kind: CInt, Bits: 8}
	TyShort = &CType{Kind: CInt, Bits: 16}
	TyInt   = &CType{Kind: CInt, Bits: 32}
	TyLong  = &CType{Kind: CInt, Bits: 64}
	TyUInt  = &CType{Kind: CInt, Bits: 32, Unsigned: true}
	TyULong = &CType{Kind: CInt, Bits: 64, Unsigned: true}
)

// Ptr returns a pointer type to elem.
func Ptr(elem *CType) *CType { return &CType{Kind: CPtr, Elem: elem} }

// Size returns the byte size of the type.
func (t *CType) Size() uint32 {
	switch t.Kind {
	case CInt:
		return uint32(t.Bits / 8)
	case CPtr:
		return 4 // IR pointers are 32-bit (Figure 5)
	case CArray:
		return t.Elem.Size() * t.Len
	case CStruct:
		return t.Struct.Size
	}
	return 0
}

// Equal reports structural equality.
func (t *CType) Equal(u *CType) bool {
	if t.Kind != u.Kind {
		return false
	}
	switch t.Kind {
	case CInt:
		return t.Bits == u.Bits && t.Unsigned == u.Unsigned
	case CPtr, CArray:
		return (t.Len == u.Len || t.Kind == CPtr) && t.Elem.Equal(u.Elem)
	case CStruct:
		return t.Struct == u.Struct
	}
	return true
}

// String renders the type.
func (t *CType) String() string {
	switch t.Kind {
	case CVoid:
		return "void"
	case CInt:
		u := ""
		if t.Unsigned {
			u = "unsigned "
		}
		switch t.Bits {
		case 8:
			return u + "char"
		case 16:
			return u + "short"
		case 32:
			return u + "int"
		case 64:
			return u + "long"
		}
		return fmt.Sprintf("%sint%d", u, t.Bits)
	case CPtr:
		return t.Elem.String() + "*"
	case CArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case CStruct:
		return "struct " + t.Struct.Name
	}
	return "?"
}

// Field is a struct member; bit fields carry their bit offset within a
// storage unit of the declared type's width.
type Field struct {
	Name   string
	Ty     *CType
	Offset uint32 // byte offset of the field's storage unit

	IsBitfield bool
	BitOff     uint
	BitWidth   uint
}

// StructType is a named struct with laid-out fields.
type StructType struct {
	Name   string
	Fields []Field
	Size   uint32
}

// FieldByName returns the field and whether it exists.
func (s *StructType) FieldByName(name string) (Field, bool) {
	for _, f := range s.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// --- AST ---

// Expr is a MinC expression node.
type Expr interface{ exprNode() }

// NumLit is an integer literal.
type NumLit struct {
	Val  uint64
	Line int
}

// VarRef names a local, parameter or global.
type VarRef struct {
	Name string
	Line int
}

// Binary is a binary operator expression (arithmetic, comparison,
// logical && and ||).
type Binary struct {
	Op   string
	L, R Expr
	Line int
}

// Unary is -, !, ~, * (deref) or & (address-of).
type Unary struct {
	Op   string
	E    Expr
	Line int
}

// Assign is "L = R" or a compound "L op= R".
type Assign struct {
	Op   string // "" for plain =, else "+", "-", ...
	L, R Expr
	Line int
}

// Call is a function call.
type Call struct {
	Name string
	Args []Expr
	Line int
}

// Index is "Base[Idx]".
type Index struct {
	Base, Idx Expr
	Line      int
}

// Member is "Base.Name" or "Base->Name".
type Member struct {
	Base  Expr
	Name  string
	Arrow bool
	Line  int
}

// Cast is "(Ty)E".
type Cast struct {
	To   *CType
	E    Expr
	Line int
}

// SizeofT is "sizeof(type)".
type SizeofT struct {
	Ty   *CType
	Line int
}

func (*NumLit) exprNode()  {}
func (*VarRef) exprNode()  {}
func (*Binary) exprNode()  {}
func (*Unary) exprNode()   {}
func (*Assign) exprNode()  {}
func (*Call) exprNode()    {}
func (*Index) exprNode()   {}
func (*Member) exprNode()  {}
func (*Cast) exprNode()    {}
func (*SizeofT) exprNode() {}

// Stmt is a MinC statement node.
type Stmt interface{ stmtNode() }

// Decl declares a local with optional initializer.
type Decl struct {
	Name string
	Ty   *CType
	Init Expr
	Line int
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct{ E Expr }

// If is if/else.
type If struct {
	Cond       Expr
	Then, Else Stmt
}

// While loops while Cond is non-zero.
type While struct {
	Cond Expr
	Body Stmt
}

// For is for(Init; Cond; Post) Body.
type For struct {
	Init Stmt
	Cond Expr
	Post Stmt
	Body Stmt
}

// Return returns, with optional value.
type Return struct {
	E    Expr
	Line int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt jumps to the innermost loop's next iteration.
type ContinueStmt struct{ Line int }

// Block is { ... }.
type Block struct{ Stmts []Stmt }

func (*Decl) stmtNode()         {}
func (*ExprStmt) stmtNode()     {}
func (*If) stmtNode()           {}
func (*While) stmtNode()        {}
func (*For) stmtNode()          {}
func (*Return) stmtNode()       {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*Block) stmtNode()        {}

// Param is a function parameter.
type CParam struct {
	Name string
	Ty   *CType
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Ret    *CType
	Params []CParam
	Body   *Block
	Line   int
}

// GlobalDecl is a module-level variable (scalar or array) with an
// optional initializer list.
type GlobalDecl struct {
	Name string
	Ty   *CType
	Init []uint64
	Line int
}

// Program is a parsed translation unit.
type Program struct {
	Structs map[string]*StructType
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}
