package minc

import "fmt"

// Parse parses a MinC translation unit.
func Parse(src string) (*Program, error) {
	lx, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{lx: lx, prog: &Program{Structs: map[string]*StructType{}}}
	if err := p.parseProgram(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

type parser struct {
	lx   *lexer
	prog *Program
}

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("minc: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(text string) (token, error) {
	t := p.lx.next()
	if t.text != text {
		return t, p.errf(t, "expected %q, got %q", text, t.text)
	}
	return t, nil
}

func (p *parser) accept(text string) bool {
	if p.lx.peek().text == text {
		p.lx.next()
		return true
	}
	return false
}

// isTypeStart reports whether the next tokens begin a type.
func (p *parser) isTypeStart() bool {
	t := p.lx.peek()
	if t.kind != tKeyword {
		return false
	}
	switch t.text {
	case "char", "short", "int", "long", "unsigned", "signed", "void", "struct":
		return true
	}
	return false
}

// parseBaseType parses a type name without declarator suffixes.
func (p *parser) parseBaseType() (*CType, error) {
	t := p.lx.next()
	unsigned := false
	if t.text == "unsigned" || t.text == "signed" {
		unsigned = t.text == "unsigned"
		if p.lx.peek().kind == tKeyword {
			switch p.lx.peek().text {
			case "char", "short", "int", "long":
				t = p.lx.next()
			default:
				return &CType{Kind: CInt, Bits: 32, Unsigned: unsigned}, nil
			}
		} else {
			return &CType{Kind: CInt, Bits: 32, Unsigned: unsigned}, nil
		}
	}
	var base *CType
	switch t.text {
	case "void":
		base = TyVoid
	case "char":
		base = &CType{Kind: CInt, Bits: 8, Unsigned: unsigned}
	case "short":
		base = &CType{Kind: CInt, Bits: 16, Unsigned: unsigned}
	case "int":
		base = &CType{Kind: CInt, Bits: 32, Unsigned: unsigned}
	case "long":
		if p.lx.peek().text == "long" {
			p.lx.next()
		}
		base = &CType{Kind: CInt, Bits: 64, Unsigned: unsigned}
	case "struct":
		nameTok := p.lx.next()
		if nameTok.kind != tIdent {
			return nil, p.errf(nameTok, "expected struct name")
		}
		if p.lx.peek().text == "{" {
			st, err := p.parseStructBody(nameTok.text)
			if err != nil {
				return nil, err
			}
			p.prog.Structs[nameTok.text] = st
			base = &CType{Kind: CStruct, Struct: st}
		} else {
			st, ok := p.prog.Structs[nameTok.text]
			if !ok {
				return nil, p.errf(nameTok, "unknown struct %q", nameTok.text)
			}
			base = &CType{Kind: CStruct, Struct: st}
		}
	default:
		return nil, p.errf(t, "expected type, got %q", t.text)
	}
	for p.accept("*") {
		base = Ptr(base)
	}
	return base, nil
}

// parseStructBody parses "{ fields }" and lays out the struct.
func (p *parser) parseStructBody(name string) (*StructType, error) {
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	st := &StructType{Name: name}
	var off uint32
	// Bit-field packing state: current unit offset/width and next bit.
	unitOff := uint32(0)
	unitBits := uint(0)
	nextBit := uint(0)
	for !p.accept("}") {
		fty, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		for {
			nameTok := p.lx.next()
			if nameTok.kind != tIdent {
				return nil, p.errf(nameTok, "expected field name")
			}
			f := Field{Name: nameTok.Name(), Ty: fty}
			if p.accept(":") {
				wTok := p.lx.next()
				if wTok.kind != tNumber || wTok.num == 0 || fty.Kind != CInt || wTok.num > uint64(fty.Bits) {
					return nil, p.errf(wTok, "bad bit-field width")
				}
				w := uint(wTok.num)
				// Start a new unit if the current one is of another
				// width or out of room.
				if unitBits != fty.Bits || nextBit+w > unitBits {
					off = align(off, fty.Size())
					unitOff = off
					unitBits = fty.Bits
					nextBit = 0
					off += fty.Size()
				}
				f.IsBitfield = true
				f.Offset = unitOff
				f.BitOff = nextBit
				f.BitWidth = w
				nextBit += w
			} else {
				unitBits = 0 // close any open bit-field unit
				if p.accept("[") {
					lenTok := p.lx.next()
					if lenTok.kind != tNumber || lenTok.num == 0 {
						return nil, p.errf(lenTok, "bad array length")
					}
					if _, err := p.expect("]"); err != nil {
						return nil, err
					}
					f.Ty = &CType{Kind: CArray, Elem: fty, Len: uint32(lenTok.num)}
				}
				al := f.Ty.Size()
				if f.Ty.Kind == CArray {
					al = f.Ty.Elem.Size()
				}
				off = align(off, al)
				f.Offset = off
				off += f.Ty.Size()
			}
			st.Fields = append(st.Fields, f)
			if !p.accept(",") {
				break
			}
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	st.Size = align(off, 4)
	if st.Size == 0 {
		st.Size = 4
	}
	return st, nil
}

func align(off, a uint32) uint32 {
	if a == 0 {
		a = 1
	}
	return (off + a - 1) &^ (a - 1)
}

// Name returns the token's identifier text.
func (t token) Name() string { return t.text }

func (p *parser) parseProgram() error {
	for {
		if p.lx.peek().kind == tEOF {
			return nil
		}
		ty, err := p.parseBaseType()
		if err != nil {
			return err
		}
		// Bare "struct S { ... };".
		if p.accept(";") {
			continue
		}
		nameTok := p.lx.next()
		if nameTok.kind != tIdent {
			return p.errf(nameTok, "expected name, got %q", nameTok.text)
		}
		if p.lx.peek().text == "(" {
			fn, err := p.parseFunc(ty, nameTok)
			if err != nil {
				return err
			}
			p.prog.Funcs = append(p.prog.Funcs, fn)
			continue
		}
		g, err := p.parseGlobal(ty, nameTok)
		if err != nil {
			return err
		}
		p.prog.Globals = append(p.prog.Globals, g)
	}
}

func (p *parser) parseGlobal(ty *CType, nameTok token) (*GlobalDecl, error) {
	g := &GlobalDecl{Name: nameTok.text, Ty: ty, Line: nameTok.line}
	if p.accept("[") {
		lenTok := p.lx.next()
		if lenTok.kind != tNumber || lenTok.num == 0 {
			return nil, p.errf(lenTok, "bad array length")
		}
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		g.Ty = &CType{Kind: CArray, Elem: ty, Len: uint32(lenTok.num)}
	}
	if p.accept("=") {
		if p.accept("{") {
			for !p.accept("}") {
				if len(g.Init) > 0 {
					if _, err := p.expect(","); err != nil {
						return nil, err
					}
				}
				v, err := p.parseConstNum()
				if err != nil {
					return nil, err
				}
				g.Init = append(g.Init, v)
			}
		} else {
			v, err := p.parseConstNum()
			if err != nil {
				return nil, err
			}
			g.Init = []uint64{v}
		}
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *parser) parseConstNum() (uint64, error) {
	neg := p.accept("-")
	t := p.lx.next()
	if t.kind != tNumber {
		return 0, p.errf(t, "expected constant")
	}
	if neg {
		return uint64(-int64(t.num)), nil
	}
	return t.num, nil
}

func (p *parser) parseFunc(ret *CType, nameTok token) (*FuncDecl, error) {
	fn := &FuncDecl{Name: nameTok.text, Ret: ret, Line: nameTok.line}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	if p.lx.peek().text == "void" && p.lx.peek2().text == ")" {
		p.lx.next()
	}
	for !p.accept(")") {
		if len(fn.Params) > 0 {
			if _, err := p.expect(","); err != nil {
				return nil, err
			}
		}
		pty, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		pn := p.lx.next()
		if pn.kind != tIdent {
			return nil, p.errf(pn, "expected parameter name")
		}
		fn.Params = append(fn.Params, CParam{Name: pn.text, Ty: pty})
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) parseBlock() (*Block, error) {
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.accept("}") {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.lx.peek()
	switch {
	case t.text == "{":
		return p.parseBlock()
	case t.text == "if":
		p.lx.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st := &If{Cond: cond, Then: then}
		if p.accept("else") {
			els, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case t.text == "while":
		p.lx.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body}, nil
	case t.text == "for":
		p.lx.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		var init Stmt
		if !p.accept(";") {
			s, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			init = s
			if _, err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		var cond Expr
		if !p.accept(";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			cond = e
			if _, err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		var post Stmt
		if p.lx.peek().text != ")" {
			s, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			post = s
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &For{Init: init, Cond: cond, Post: post, Body: body}, nil
	case t.text == "return":
		p.lx.next()
		st := &Return{Line: t.line}
		if !p.accept(";") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.E = e
			if _, err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		return st, nil
	case t.text == "break":
		p.lx.next()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: t.line}, nil
	case t.text == "continue":
		p.lx.next()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: t.line}, nil
	case t.text == ";":
		p.lx.next()
		return &Block{}, nil
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// parseSimpleStmt parses a declaration or expression statement (no
// trailing semicolon).
func (p *parser) parseSimpleStmt() (Stmt, error) {
	if p.isTypeStart() {
		ty, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		nameTok := p.lx.next()
		if nameTok.kind != tIdent {
			return nil, p.errf(nameTok, "expected variable name")
		}
		if p.accept("[") {
			lenTok := p.lx.next()
			if lenTok.kind != tNumber || lenTok.num == 0 {
				return nil, p.errf(lenTok, "bad array length")
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			ty = &CType{Kind: CArray, Elem: ty, Len: uint32(lenTok.num)}
		}
		d := &Decl{Name: nameTok.text, Ty: ty, Line: nameTok.line}
		if p.accept("=") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
		return d, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ExprStmt{E: e}, nil
}

// --- expressions (precedence climbing) ---

var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseAssign() }

func (p *parser) parseAssign() (Expr, error) {
	l, err := p.parseBin(1)
	if err != nil {
		return nil, err
	}
	t := p.lx.peek()
	switch t.text {
	case "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=":
		p.lx.next()
		r, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		op := ""
		if t.text != "=" {
			op = t.text[:len(t.text)-1]
		}
		return &Assign{Op: op, L: l, R: r, Line: t.line}, nil
	}
	return l, nil
}

func (p *parser) parseBin(minPrec int) (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.lx.peek()
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return l, nil
		}
		p.lx.next()
		r, err := p.parseBin(prec + 1)
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: t.text, L: l, R: r, Line: t.line}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.lx.peek()
	switch t.text {
	case "-", "!", "~", "*", "&":
		p.lx.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.text, E: e, Line: t.line}, nil
	}
	// Cast: "(" type ")" unary.
	if t.text == "(" && p.lx.peek2().kind == tKeyword && p.lx.peek2().text != "sizeof" {
		p.lx.next()
		ty, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Cast{To: ty, E: e, Line: t.line}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.lx.peek()
		switch t.text {
		case "[":
			p.lx.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &Index{Base: e, Idx: idx, Line: t.line}
		case ".":
			p.lx.next()
			n := p.lx.next()
			e = &Member{Base: e, Name: n.text, Line: t.line}
		case "->":
			p.lx.next()
			n := p.lx.next()
			e = &Member{Base: e, Name: n.text, Arrow: true, Line: t.line}
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.lx.next()
	switch {
	case t.kind == tNumber:
		return &NumLit{Val: t.num, Line: t.line}, nil
	case t.kind == tKeyword && t.text == "sizeof":
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		ty, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return &SizeofT{Ty: ty, Line: t.line}, nil
	case t.kind == tIdent:
		if p.lx.peek().text == "(" {
			p.lx.next()
			c := &Call{Name: t.text, Line: t.line}
			for !p.accept(")") {
				if len(c.Args) > 0 {
					if _, err := p.expect(","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				c.Args = append(c.Args, a)
			}
			return c, nil
		}
		return &VarRef{Name: t.text, Line: t.line}, nil
	case t.text == "(":
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf(t, "unexpected token %q", t.text)
}
