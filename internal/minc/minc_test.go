package minc

import (
	"testing"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/mi"
	"tameir/internal/passes"
	"tameir/internal/target"
)

// runMain compiles src and interprets @main under the Freeze
// semantics, returning the i32 result.
func runMain(t *testing.T, src string, cfg Config) int64 {
	t.Helper()
	mod, err := CompileString(src, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := ir.VerifyModule(mod, ir.VerifyLegacy); err != nil {
		t.Fatalf("verify: %v\n%s", err, mod)
	}
	main := mod.FuncByName("main")
	if main == nil {
		t.Fatal("no main")
	}
	out := core.Exec(main, nil, core.ZeroOracle{}, core.FreezeOptions())
	if out.Kind != core.OutRet {
		t.Fatalf("main did not return: %v\n%s", out, mod)
	}
	return out.Val.Int()
}

func freezeCfg() Config { return Config{FreezeBitfieldLoads: true} }

func TestArithmeticAndLocals(t *testing.T) {
	src := `
int main() {
    int a = 6;
    int b = 7;
    int c = a * b + 3;
    c = c - 5;
    return c / 2;   // (45-5)/2 = 20
}`
	if got := runMain(t, src, freezeCfg()); got != 20 {
		t.Errorf("got %d, want 20", got)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
int main() {
    int sum = 0;
    for (int i = 0; i < 10; i = i + 1) {
        if (i % 2 == 0) sum += i;
        else sum -= 1;
    }
    int j = 0;
    while (j < 3) { sum = sum * 2; j = j + 1; }
    return sum;    // (0+2+4+6+8 - 5) * 8 = 120
}`
	if got := runMain(t, src, freezeCfg()); got != 120 {
		t.Errorf("got %d, want 120", got)
	}
}

func TestShortCircuit(t *testing.T) {
	src := `
int div(int a, int b) { return a / b; }
int main() {
    int z = 0;
    // RHS must not evaluate: division by zero would be UB.
    if (z != 0 && div(1, z) > 0) return 1;
    if (z == 0 || div(1, z) > 0) return 42;
    return 2;
}`
	if got := runMain(t, src, freezeCfg()); got != 42 {
		t.Errorf("got %d, want 42", got)
	}
}

func TestPointersAndArrays(t *testing.T) {
	src := `
int main() {
    int a[8];
    for (int i = 0; i < 8; i += 1) a[i] = i * i;
    int *p = &a[2];
    p = p + 3;      // &a[5]
    return *p + a[7]; // 25 + 49
}`
	if got := runMain(t, src, freezeCfg()); got != 74 {
		t.Errorf("got %d, want 74", got)
	}
}

func TestGlobals(t *testing.T) {
	src := `
int tab[4] = {10, 20, 30, 40};
int scale = 3;
int main() {
    int s = 0;
    for (int i = 0; i < 4; i += 1) s += tab[i];
    return s * scale;
}`
	if got := runMain(t, src, freezeCfg()); got != 300 {
		t.Errorf("got %d, want 300", got)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	src := `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() { return fib(10); }`
	if got := runMain(t, src, freezeCfg()); got != 55 {
		t.Errorf("got %d, want 55", got)
	}
}

func TestUnsignedAndWidths(t *testing.T) {
	src := `
int main() {
    unsigned char c = 200;
    c = c + 100;            // wraps to 44
    short s = -5;
    long l = s;             // sign-extends
    unsigned int u = 3000000000;
    unsigned int v = u + u; // wraps mod 2^32
    return c + (int)l + (int)(v % 97);
}`
	want := int64(44 - 5 + (1705032704 % 97)) // 6000000000 mod 2^32 = 1705032704
	if got := runMain(t, src, freezeCfg()); got != want {
		t.Errorf("got %d, want %d", got, want)
	}
}

func TestStructsAndBitfields(t *testing.T) {
	src := `
struct flags {
    int a : 3;
    int b : 5;
    unsigned c : 4;
    int wide;
};
int main() {
    struct flags f;
    f.a = 3;
    f.b = -6;
    f.c = 13;
    f.wide = 1000;
    struct flags *p = &f;
    p->wide += 24;
    return f.a * 100000 + (f.b + 16) * 1000 + f.c * 100 + p->wide;
}`
	// a=3, b=-6 (+16 → 10), c=13, wide=1024.
	want := int64(3*100000 + 10*1000 + 13*100 + 1024)
	if got := runMain(t, src, freezeCfg()); got != want {
		t.Errorf("got %d, want %d", got, want)
	}
}

// §5.3: without the freeze, the very first bit-field store under the
// Freeze semantics reads poison and the or-combine taints the whole
// unit, so a sibling field readback is poison. With the freeze it is a
// fresh-but-stable value and overwritten fields read back correctly.
func TestBitfieldFreezeNecessity(t *testing.T) {
	src := `
struct s { int a : 4; int b : 4; };
int main() {
    struct s x;
    x.a = 5;
    x.b = 2;
    return x.a + x.b * 10;  // 25
}`
	// With the fix: defined result.
	if got := runMain(t, src, freezeCfg()); got != 25 {
		t.Errorf("with freeze: got %d, want 25", got)
	}
	// Without the fix, under Freeze semantics: the function returns
	// poison (x.a's unit bits beyond the two fields stay poison, but
	// more importantly the first store's or taints... check directly).
	mod, err := CompileString(src, Config{FreezeBitfieldLoads: false})
	if err != nil {
		t.Fatal(err)
	}
	out := core.Exec(mod.FuncByName("main"), nil, core.ZeroOracle{}, core.FreezeOptions())
	if out.Kind != core.OutRet || !out.Val.AnyPoison() {
		t.Errorf("without freeze the §5.3 program should return poison, got %v", out)
	}
	// Under the legacy semantics the unfrozen lowering is fine: the
	// uninitialized load is undef, and the masked combine keeps the
	// written bits.
	outLegacy := core.Exec(mod.FuncByName("main"), nil, core.NewRandOracle(1), core.LegacyOptions(core.BranchPoisonNondet))
	if outLegacy.Kind != core.OutRet || !outLegacy.Val.IsConcrete() || outLegacy.Val.Int() != 25 {
		t.Errorf("legacy unfrozen bit-field store: got %v, want 25", outLegacy)
	}
}

func TestSizeofAndCasts(t *testing.T) {
	src := `
struct pair { int x; int y; };
int main() {
    long big = 0x123456789;
    int low = (int)big;
    char c = (char)low;
    return sizeof(struct pair) + sizeof(long) + (c == 0x89 - 256 ? 1 : 0);
}`
	// MinC has no ?:, rewrite:
	src = `
struct pair { int x; int y; };
int main() {
    long big = 0x123456789;
    int low = (int)big;
    char c = (char)low;
    int bonus = 0;
    if (c == 0x89 - 256) bonus = 1;
    return sizeof(struct pair) + sizeof(long) + bonus;
}`
	if got := runMain(t, src, freezeCfg()); got != 8+8+1 {
		t.Errorf("got %d, want 17", got)
	}
}

func TestCharLiteralsAndShifts(t *testing.T) {
	src := `
int main() {
    int a = 'A';
    unsigned int u = 0x80000000;
    int arith = (int)u >> 31;      // -1 (sign bits)
    unsigned logical = u >> 31;    // 1
    return a + arith + (int)logical + (1 << 4);
}`
	if got := runMain(t, src, freezeCfg()); got != 65-1+1+16 {
		t.Errorf("got %d, want 81", got)
	}
}

func TestStructArraysAndNesting(t *testing.T) {
	src := `
struct point { int x; int y; };
struct point grid[10];
int main() {
    for (int i = 0; i < 10; i += 1) {
        grid[i].x = i;
        grid[i].y = i * 2;
    }
    int s = 0;
    for (int i = 0; i < 10; i += 1) s += grid[i].x + grid[i].y;
    return s;  // 3 * 45 = 135
}`
	if got := runMain(t, src, freezeCfg()); got != 135 {
		t.Errorf("got %d, want 135", got)
	}
}

// End-to-end: MinC → IR → O2 → VX64 → simulator, compared with the
// unoptimized interpretation.
func TestMinCThroughFullPipeline(t *testing.T) {
	src := `
int gcd(int a, int b) {
    while (b != 0) { int t = a % b; a = b; b = t; }
    return a;
}
int main() {
    int acc = 0;
    for (int i = 1; i <= 20; i += 1) acc += gcd(i * 7, 91);
    return acc;
}`
	want := runMain(t, src, freezeCfg())

	mod, err := CompileString(src, freezeCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := passes.DefaultFreezeConfig()
	cfg.VerifyAfterEach = true
	passes.O2().Run(mod, cfg)
	// Optimized interpretation agrees.
	out := core.Exec(mod.FuncByName("main"), nil, core.ZeroOracle{}, core.FreezeOptions())
	if out.Kind != core.OutRet || out.Val.Int() != want {
		t.Fatalf("optimized interpretation: %v, want %d\n%s", out, want, mod)
	}
	// Backend + simulator agree.
	prog, err := mi.CompileModule(mod)
	if err != nil {
		t.Fatalf("backend: %v\n%s", err, mod)
	}
	m := target.NewMachine(prog)
	got, err := m.Run(prog.FuncByName("main"))
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if int64(int32(uint32(got))) != want {
		t.Errorf("simulator: %d, want %d", got, want)
	}
	if m.Cycles == 0 {
		t.Error("no cycles counted")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"int main( { return 0; }",
		"int main() { return 0 }",
		"int main() { foo bar; }",
		"int main() { return x; }",
		"int main() { struct nope s; return 0; }",
		"int main() { int a[0]; return 0; }",
		"int main() { return f(1); }",
	}
	for i, src := range bad {
		if _, err := CompileString(src, freezeCfg()); err == nil {
			t.Errorf("case %d: expected error for %q", i, src)
		}
	}
}

func TestCompoundAssignOps(t *testing.T) {
	src := `
int main() {
    int x = 100;
    x += 5; x -= 3; x *= 2; x /= 4; x %= 13;
    x <<= 2; x >>= 1; x &= 0xff; x |= 0x100; x ^= 0x3;
    return x;
}`
	x := 100
	x += 5
	x -= 3
	x *= 2
	x /= 4
	x %= 13
	x <<= 2
	x >>= 1
	x &= 0xff
	x |= 0x100
	x ^= 0x3
	if got := runMain(t, src, freezeCfg()); got != int64(x) {
		t.Errorf("got %d, want %d", got, x)
	}
}

// §5.3's "superior alternative": the vector-based bit-field lowering
// needs no freeze at all — per-lane poison cannot contaminate sibling
// fields — and, like the paper's LLVM, our backend cannot lower it
// (vectors are unsupported at VX64), so it runs on the interpreter
// only.
func TestBitfieldVectorLowering(t *testing.T) {
	src := `
struct s { int a : 4; int b : 4; };
int main() {
    struct s x;
    x.a = 5;
    x.b = 2;
    return x.a + x.b * 10;  // 25
}`
	cfg := Config{Bitfields: BitfieldVector} // note: no freeze flag
	mod, err := CompileString(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	freezes := 0
	mod.FuncByName("main").ForEachInstr(func(in *ir.Instr) {
		if in.Op == ir.OpFreeze {
			freezes++
		}
	})
	if freezes != 0 {
		t.Errorf("vector lowering should need no freezes, found %d", freezes)
	}
	out := core.Exec(mod.FuncByName("main"), nil, core.ZeroOracle{}, core.FreezeOptions())
	if out.Kind != core.OutRet || !out.Val.IsConcrete() || out.Val.Int() != 25 {
		t.Errorf("vector-lowered bit fields: got %v, want 25", out)
	}
	// The backend rejects it — the paper's "not well supported by
	// LLVM's backend", faithfully reproduced.
	if _, err := mi.CompileModule(mod); err == nil {
		t.Error("VX64 should reject the vector lowering (as the paper's backend effectively did)")
	}
}
