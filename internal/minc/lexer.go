// Package minc is a small C-like frontend ("MinC") that compiles to
// the IR of package ir, playing the role Clang plays in the paper. Its
// one paper-relevant lowering decision is §5.3: a store to a struct
// bit field is load / mask / combine / store of the containing word,
// and under the Freeze semantics the loaded word must be frozen —
// otherwise the very first store to a fresh struct would read poison
// and poison the whole word. The paper's entire Clang change was this
// one line; Config.FreezeBitfieldLoads is that line.
//
// Language summary:
//
//	types:       char, short, int, long (+ unsigned), pointers, arrays,
//	             struct { ... } with optional bit fields "int f : 3;"
//	statements:  declarations with optional init, if/else, while, for,
//	             return, expression statements, blocks
//	expressions: usual C operators (no ++/--/?:), array indexing,
//	             struct member access (. and ->), function calls,
//	             casts "(type)expr", address-of and dereference
//	top level:   functions and global arrays/scalars
package minc

import (
	"fmt"
	"strconv"
	"unicode"
)

type tokKind uint8

const (
	tEOF tokKind = iota
	tIdent
	tNumber
	tPunct
	tKeyword
)

var keywords = map[string]bool{
	"char": true, "short": true, "int": true, "long": true,
	"unsigned": true, "signed": true, "void": true, "struct": true,
	"if": true, "else": true, "while": true, "for": true,
	"return": true, "sizeof": true, "break": true, "continue": true,
}

type token struct {
	kind tokKind
	text string
	num  uint64
	line int
}

type lexer struct {
	toks []token
	pos  int
}

var multiPunct = []string{
	"<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
}

func lex(src string) (*lexer, error) {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			i += 2
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
				if src[i] == '\n' {
					line++
				}
				i++
			}
			i += 2
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			word := src[i:j]
			k := tIdent
			if keywords[word] {
				k = tKeyword
			}
			toks = append(toks, token{kind: k, text: word, line: line})
			i = j
		case c >= '0' && c <= '9':
			j := i
			base := 10
			if c == '0' && j+1 < len(src) && (src[j+1] == 'x' || src[j+1] == 'X') {
				base = 16
				j += 2
			}
			for j < len(src) && isNumChar(src[j], base) {
				j++
			}
			text := src[i:j]
			var v uint64
			var err error
			if base == 16 {
				v, err = strconv.ParseUint(text[2:], 16, 64)
			} else {
				v, err = strconv.ParseUint(text, 10, 64)
			}
			if err != nil {
				return nil, fmt.Errorf("minc: line %d: bad number %q", line, text)
			}
			toks = append(toks, token{kind: tNumber, text: text, num: v, line: line})
			i = j
		case c == '\'':
			if i+2 < len(src) && src[i+2] == '\'' {
				toks = append(toks, token{kind: tNumber, text: src[i : i+3], num: uint64(src[i+1]), line: line})
				i += 3
			} else {
				return nil, fmt.Errorf("minc: line %d: bad char literal", line)
			}
		default:
			matched := false
			for _, mp := range multiPunct {
				if len(src)-i >= len(mp) && src[i:i+len(mp)] == mp {
					toks = append(toks, token{kind: tPunct, text: mp, line: line})
					i += len(mp)
					matched = true
					break
				}
			}
			if !matched {
				toks = append(toks, token{kind: tPunct, text: string(c), line: line})
				i++
			}
		}
	}
	toks = append(toks, token{kind: tEOF, line: line})
	return &lexer{toks: toks}, nil
}

func isNumChar(c byte, base int) bool {
	if c >= '0' && c <= '9' {
		return true
	}
	if base == 16 {
		return (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
	}
	return false
}

func (l *lexer) peek() token  { return l.toks[l.pos] }
func (l *lexer) peek2() token { return l.toks[min(l.pos+1, len(l.toks)-1)] }

func (l *lexer) next() token {
	t := l.toks[l.pos]
	if t.kind != tEOF {
		l.pos++
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
