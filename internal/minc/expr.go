package minc

import (
	"fmt"

	"tameir/internal/ir"
)

// convert coerces a value to type to, following C's value-preserving
// conversion rules: extension uses the *source* signedness.
func (g *irgen) convert(v cval, to *CType, line int) (cval, error) {
	if v.ty.Equal(to) {
		return cval{v.v, to}, nil
	}
	// Array-to-pointer decay happens in genExpr; here both must be
	// scalar.
	if v.ty.Kind == CPtr && to.Kind == CPtr {
		return cval{v.v, to}, nil // all pointers are one IR type
	}
	if v.ty.Kind != CInt || to.Kind != CInt {
		return cval{}, fmt.Errorf("minc: line %d: cannot convert %s to %s", line, v.ty, to)
	}
	from := v.ty
	switch {
	case from.Bits == to.Bits:
		return cval{v.v, to}, nil // signedness-only change is a no-op on bits
	case from.Bits > to.Bits:
		return cval{g.bd.Trunc(v.v, ir.Int(to.Bits)), to}, nil
	case from.Unsigned:
		return cval{g.bd.ZExt(v.v, ir.Int(to.Bits)), to}, nil
	default:
		return cval{g.bd.SExt(v.v, ir.Int(to.Bits)), to}, nil
	}
}

// usualConv applies the usual arithmetic conversions to a pair.
func (g *irgen) usualConv(a, b cval, line int) (cval, cval, *CType, error) {
	if a.ty.Kind != CInt || b.ty.Kind != CInt {
		return cval{}, cval{}, nil, fmt.Errorf("minc: line %d: arithmetic on non-integers (%s, %s)", line, a.ty, b.ty)
	}
	bits := a.ty.Bits
	if b.ty.Bits > bits {
		bits = b.ty.Bits
	}
	if bits < 32 {
		bits = 32 // integer promotion
	}
	unsigned := (a.ty.Bits == bits && a.ty.Unsigned) || (b.ty.Bits == bits && b.ty.Unsigned)
	common := &CType{Kind: CInt, Bits: bits, Unsigned: unsigned}
	ca, err := g.convert(a, common, line)
	if err != nil {
		return cval{}, cval{}, nil, err
	}
	cb, err := g.convert(b, common, line)
	if err != nil {
		return cval{}, cval{}, nil, err
	}
	return ca, cb, common, nil
}

// genExpr evaluates an expression as an rvalue. Arrays decay to
// pointers; struct rvalues are not supported (use pointers).
func (g *irgen) genExpr(e Expr) (cval, error) {
	switch x := e.(type) {
	case *NumLit:
		ty := TyInt
		if x.Val > 0x7fffffff {
			ty = TyLong
		}
		return cval{ir.ConstInt(ir.Int(ty.Bits), x.Val), ty}, nil
	case *SizeofT:
		return cval{ir.ConstInt(ir.I32, uint64(x.Ty.Size())), TyUInt}, nil
	case *Binary:
		return g.genBinary(x)
	case *Unary:
		return g.genUnary(x)
	case *Assign:
		return g.genAssign(x)
	case *Cast:
		v, err := g.genExpr(x.E)
		if err != nil {
			return cval{}, err
		}
		return g.convert(v, x.To, x.Line)
	case *Call:
		fn, ok := g.funcs[x.Name]
		if !ok {
			return cval{}, fmt.Errorf("minc: line %d: unknown function %s", x.Line, x.Name)
		}
		if len(x.Args) != len(fn.Params) {
			return cval{}, fmt.Errorf("minc: line %d: %s expects %d args", x.Line, x.Name, len(fn.Params))
		}
		var args []ir.Value
		for i, a := range x.Args {
			av, err := g.genExpr(a)
			if err != nil {
				return cval{}, err
			}
			want := fn.Params[i].Ty
			cv, err := g.convertToIRType(av, want, x.Line)
			if err != nil {
				return cval{}, err
			}
			args = append(args, cv)
		}
		res := g.bd.Call(fn, args...)
		rty := TyInt
		switch {
		case fn.RetTy.IsVoid():
			rty = TyVoid
		case fn.RetTy.IsPtr():
			rty = Ptr(TyChar)
		default:
			rty = &CType{Kind: CInt, Bits: fn.RetTy.Bits}
		}
		return cval{res, rty}, nil
	default:
		lv, err := g.genLValue(e)
		if err != nil {
			return cval{}, err
		}
		return g.loadLValue(lv)
	}
}

// convertToIRType coerces through the C conversion to the exact IR
// parameter type.
func (g *irgen) convertToIRType(v cval, want ir.Type, line int) (ir.Value, error) {
	if want.IsPtr() {
		if v.ty.Kind != CPtr {
			return nil, fmt.Errorf("minc: line %d: expected pointer argument", line)
		}
		return v.v, nil
	}
	cv, err := g.convert(v, &CType{Kind: CInt, Bits: want.Bits}, line)
	if err != nil {
		return nil, err
	}
	return cv.v, nil
}

func (g *irgen) genBinary(x *Binary) (cval, error) {
	if x.Op == "&&" || x.Op == "||" {
		return g.genShortCircuit(x)
	}
	a, err := g.genExpr(x.L)
	if err != nil {
		return cval{}, err
	}
	b, err := g.genExpr(x.R)
	if err != nil {
		return cval{}, err
	}
	return g.genBinOpVals(x.Op, a, b, x.Line)
}

func (g *irgen) genBinOpVals(op string, a, b cval, line int) (cval, error) {
	// Pointer arithmetic: p ± i and p - p.
	if a.ty.Kind == CPtr && (op == "+" || op == "-") && b.ty.Kind == CInt {
		idx, err := g.convert(b, TyInt, line)
		if err != nil {
			return cval{}, err
		}
		iv := idx.v
		if op == "-" {
			neg := g.bd.Sub(ir.ConstInt(ir.I32, 0), iv)
			iv = neg
		}
		// §2.4: pointer arithmetic overflow is deferred UB (inbounds).
		gep := g.gepScaled(a.v, iv, a.ty.Elem.Size())
		return cval{gep, a.ty}, nil
	}
	if a.ty.Kind == CPtr && b.ty.Kind == CPtr {
		switch op {
		case "==", "!=", "<", ">", "<=", ">=":
			pred := map[string]ir.Pred{"==": ir.PredEQ, "!=": ir.PredNE, "<": ir.PredULT, ">": ir.PredUGT, "<=": ir.PredULE, ">=": ir.PredUGE}[op]
			c := g.bd.ICmp(pred, a.v, b.v)
			return cval{g.bd.ZExt(c, ir.I32), TyInt}, nil
		}
		return cval{}, fmt.Errorf("minc: line %d: unsupported pointer op %q", line, op)
	}

	ca, cb, common, err := g.usualConv(a, b, line)
	if err != nil {
		return cval{}, err
	}
	switch op {
	case "+", "-", "*":
		irop := map[string]ir.Op{"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul}[op]
		attrs := ir.Attrs(0)
		if !common.Unsigned {
			// C's signed-overflow UB lowers to deferred UB — the
			// paper's §2 motivation.
			attrs = ir.NSW
		}
		return cval{g.bd.Binop(irop, attrs, ca.v, cb.v), common}, nil
	case "/":
		if common.Unsigned {
			return cval{g.bd.UDiv(ca.v, cb.v), common}, nil
		}
		return cval{g.bd.SDiv(ca.v, cb.v), common}, nil
	case "%":
		if common.Unsigned {
			return cval{g.bd.Binop(ir.OpURem, 0, ca.v, cb.v), common}, nil
		}
		return cval{g.bd.Binop(ir.OpSRem, 0, ca.v, cb.v), common}, nil
	case "&", "|", "^":
		irop := map[string]ir.Op{"&": ir.OpAnd, "|": ir.OpOr, "^": ir.OpXor}[op]
		return cval{g.bd.Binop(irop, 0, ca.v, cb.v), common}, nil
	case "<<":
		return cval{g.bd.Shl(ca.v, cb.v), common}, nil
	case ">>":
		if common.Unsigned {
			return cval{g.bd.Binop(ir.OpLShr, 0, ca.v, cb.v), common}, nil
		}
		return cval{g.bd.Binop(ir.OpAShr, 0, ca.v, cb.v), common}, nil
	case "==", "!=", "<", ">", "<=", ">=":
		var pred ir.Pred
		if common.Unsigned {
			pred = map[string]ir.Pred{"==": ir.PredEQ, "!=": ir.PredNE, "<": ir.PredULT, ">": ir.PredUGT, "<=": ir.PredULE, ">=": ir.PredUGE}[op]
		} else {
			pred = map[string]ir.Pred{"==": ir.PredEQ, "!=": ir.PredNE, "<": ir.PredSLT, ">": ir.PredSGT, "<=": ir.PredSLE, ">=": ir.PredSGE}[op]
		}
		c := g.bd.ICmp(pred, ca.v, cb.v)
		return cval{g.bd.ZExt(c, ir.I32), TyInt}, nil
	}
	return cval{}, fmt.Errorf("minc: line %d: unsupported operator %q", line, op)
}

// gepScaled computes base + idx*elemSize with the inbounds (deferred
// UB on overflow) attribute, scaling by hand for element sizes the GEP
// instruction cannot express directly.
func (g *irgen) gepScaled(base, idx ir.Value, elemSize uint32) ir.Value {
	switch elemSize {
	case 1, 2, 4, 8:
		return g.bd.GEPInbounds(ir.Int(uint(elemSize)*8), base, idx)
	}
	scaled := g.bd.Binop(ir.OpMul, ir.NSW, idx, ir.ConstInt(idx.Type(), uint64(elemSize)))
	return g.bd.GEPInbounds(ir.I8, base, scaled)
}

// genShortCircuit lowers && and || with real control flow (Figure 2's
// "cond2 implies cond" pattern relies on it).
func (g *irgen) genShortCircuit(x *Binary) (cval, error) {
	lv, err := g.genCond(x.L)
	if err != nil {
		return cval{}, err
	}
	rhsB := g.fn.NewBlock("sc.rhs")
	endB := g.fn.NewBlock("sc.end")
	lhsB := g.bd.Block()
	if x.Op == "&&" {
		g.bd.CondBr(lv, rhsB, endB)
	} else {
		g.bd.CondBr(lv, endB, rhsB)
	}
	g.bd.SetBlock(rhsB)
	rv, err := g.genCond(x.R)
	if err != nil {
		return cval{}, err
	}
	rhsOut := g.bd.Block() // genCond may have created blocks
	g.bd.Br(endB)
	g.bd.SetBlock(endB)
	phi := g.bd.Phi(ir.I1)
	shortVal := ir.ConstBool(x.Op == "||")
	phi.AddPhiIncoming(shortVal, lhsB)
	phi.AddPhiIncoming(rv, rhsOut)
	return cval{g.bd.ZExt(phi, ir.I32), TyInt}, nil
}

func (g *irgen) genUnary(x *Unary) (cval, error) {
	switch x.Op {
	case "-":
		v, err := g.genExpr(x.E)
		if err != nil {
			return cval{}, err
		}
		return g.genBinOpVals("-", cval{ir.ConstInt(v.v.Type(), 0), v.ty}, v, x.Line)
	case "~":
		v, err := g.genExpr(x.E)
		if err != nil {
			return cval{}, err
		}
		if v.ty.Kind != CInt {
			return cval{}, fmt.Errorf("minc: line %d: ~ on non-integer", x.Line)
		}
		all := ir.ConstInt(v.v.Type(), ^uint64(0))
		return cval{g.bd.Xor(v.v, all), v.ty}, nil
	case "!":
		v, err := g.genExpr(x.E)
		if err != nil {
			return cval{}, err
		}
		z := g.bd.ICmp(ir.PredEQ, v.v, ir.ConstInt(v.v.Type(), 0))
		return cval{g.bd.ZExt(z, ir.I32), TyInt}, nil
	case "*":
		v, err := g.genExpr(x.E)
		if err != nil {
			return cval{}, err
		}
		if v.ty.Kind != CPtr {
			return cval{}, fmt.Errorf("minc: line %d: dereference of non-pointer %s", x.Line, v.ty)
		}
		return g.loadLValue(clval{addr: v.v, ty: v.ty.Elem})
	case "&":
		lv, err := g.genLValue(x.E)
		if err != nil {
			return cval{}, err
		}
		if lv.bf != nil {
			return cval{}, fmt.Errorf("minc: line %d: cannot take the address of a bit field", x.Line)
		}
		return cval{lv.addr, Ptr(lv.ty)}, nil
	}
	return cval{}, fmt.Errorf("minc: line %d: unsupported unary %q", x.Line, x.Op)
}

// genLValue computes the address (and bit-field window) of an
// assignable expression.
func (g *irgen) genLValue(e Expr) (clval, error) {
	switch x := e.(type) {
	case *VarRef:
		if l, ok := g.lookup(x.Name); ok {
			return clval{addr: l.addr, ty: l.ty}, nil
		}
		if gi, ok := g.globals[x.Name]; ok {
			return clval{addr: gi.g, ty: gi.ty}, nil
		}
		return clval{}, fmt.Errorf("minc: line %d: undefined variable %s", x.Line, x.Name)
	case *Index:
		base, err := g.genExpr(x.Base) // decays arrays
		if err != nil {
			return clval{}, err
		}
		if base.ty.Kind != CPtr {
			return clval{}, fmt.Errorf("minc: line %d: indexing non-pointer %s", x.Line, base.ty)
		}
		idx, err := g.genExpr(x.Idx)
		if err != nil {
			return clval{}, err
		}
		ci, err := g.convert(idx, TyInt, x.Line)
		if err != nil {
			return clval{}, err
		}
		elem := base.ty.Elem
		gep := g.gepScaled(base.v, ci.v, elem.Size())
		return clval{addr: gep, ty: elem}, nil
	case *Member:
		var baseAddr ir.Value
		var st *StructType
		if x.Arrow {
			bv, err := g.genExpr(x.Base)
			if err != nil {
				return clval{}, err
			}
			if bv.ty.Kind != CPtr || bv.ty.Elem.Kind != CStruct {
				return clval{}, fmt.Errorf("minc: line %d: -> on %s", x.Line, bv.ty)
			}
			baseAddr = bv.v
			st = bv.ty.Elem.Struct
		} else {
			blv, err := g.genLValue(x.Base)
			if err != nil {
				return clval{}, err
			}
			if blv.ty.Kind != CStruct {
				return clval{}, fmt.Errorf("minc: line %d: . on %s", x.Line, blv.ty)
			}
			baseAddr = blv.addr
			st = blv.ty.Struct
		}
		f, ok := st.FieldByName(x.Name)
		if !ok {
			return clval{}, fmt.Errorf("minc: line %d: struct %s has no field %s", x.Line, st.Name, x.Name)
		}
		addr := baseAddr
		if f.Offset != 0 {
			addr = g.bd.GEPInbounds(ir.I8, baseAddr, ir.ConstInt(ir.I32, uint64(f.Offset)))
		}
		if f.IsBitfield {
			bf := f
			return clval{addr: addr, ty: f.Ty, bf: &bf}, nil
		}
		return clval{addr: addr, ty: f.Ty}, nil
	case *Unary:
		if x.Op == "*" {
			v, err := g.genExpr(x.E)
			if err != nil {
				return clval{}, err
			}
			if v.ty.Kind != CPtr {
				return clval{}, fmt.Errorf("minc: line %d: dereference of non-pointer", x.Line)
			}
			return clval{addr: v.v, ty: v.ty.Elem}, nil
		}
	}
	return clval{}, fmt.Errorf("minc: %T is not an lvalue", e)
}

// loadLValue reads an lvalue as an rvalue, decaying arrays and
// extracting bit fields.
func (g *irgen) loadLValue(lv clval) (cval, error) {
	switch lv.ty.Kind {
	case CArray:
		return cval{lv.addr, Ptr(lv.ty.Elem)}, nil
	case CStruct:
		return cval{}, fmt.Errorf("minc: struct rvalues are unsupported; take a pointer")
	}
	if lv.bf != nil {
		return g.loadBitfield(lv)
	}
	t, err := irType(lv.ty)
	if err != nil {
		return cval{}, err
	}
	return cval{g.bd.Load(t, lv.addr), lv.ty}, nil
}

func (g *irgen) loadBitfield(lv clval) (cval, error) {
	if g.cfg.Bitfields == BitfieldVector {
		return g.loadBitfieldVector(lv)
	}
	f := lv.bf
	unit := ir.Int(f.Ty.Bits)
	w := g.bd.Load(unit, lv.addr)
	var v ir.Value = w
	if f.BitOff > 0 {
		v = g.bd.Binop(ir.OpLShr, 0, v, ir.ConstInt(unit, uint64(f.BitOff)))
	}
	if f.BitWidth < f.Ty.Bits {
		nv := g.bd.Trunc(v, ir.Int(f.BitWidth))
		if f.Ty.Unsigned {
			v = g.bd.ZExt(nv, unit)
		} else {
			v = g.bd.SExt(nv, unit)
		}
	}
	return cval{v, f.Ty}, nil
}

func (g *irgen) genAssign(x *Assign) (cval, error) {
	lv, err := g.genLValue(x.L)
	if err != nil {
		return cval{}, err
	}
	rv, err := g.genExpr(x.R)
	if err != nil {
		return cval{}, err
	}
	if x.Op != "" {
		cur, err := g.loadLValue(lv)
		if err != nil {
			return cval{}, err
		}
		rv, err = g.genBinOpVals(x.Op, cur, rv, x.Line)
		if err != nil {
			return cval{}, err
		}
	}
	cv, err := g.convert(rv, assignedType(lv), x.Line)
	if err != nil {
		return cval{}, err
	}
	if lv.bf != nil {
		if err := g.storeBitfield(lv, cv.v); err != nil {
			return cval{}, err
		}
		return cv, nil
	}
	if lv.ty.Kind == CArray || lv.ty.Kind == CStruct {
		return cval{}, fmt.Errorf("minc: line %d: cannot assign aggregate", x.Line)
	}
	g.bd.Store(cv.v, lv.addr)
	return cv, nil
}

func assignedType(lv clval) *CType { return lv.ty }

// storeBitfield emits the §5.3 sequence: load the unit, freeze it
// (Freeze semantics only), clear the field's bits, merge the new
// value, store back — or, in BitfieldVector mode, the vector-based
// alternative that needs no freeze.
func (g *irgen) storeBitfield(lv clval, v ir.Value) error {
	if g.cfg.Bitfields == BitfieldVector {
		return g.storeBitfieldVector(lv, v)
	}
	f := lv.bf
	unit := ir.Int(f.Ty.Bits)
	loaded := g.bd.Load(unit, lv.addr)
	var word ir.Value = loaded
	if g.cfg.FreezeBitfieldLoads {
		// The paper's one-line Clang change: without this freeze, the
		// very first bit-field store to a fresh struct reads poison
		// and the or-combine poisons every sibling field.
		word = g.bd.Freeze(loaded)
	}
	fieldMask := ir.TruncBits(^uint64(0), f.BitWidth)
	clearMask := ir.ConstInt(unit, ^(fieldMask << f.BitOff))
	cleared := g.bd.And(word, clearMask)
	val := g.bd.And(v, ir.ConstInt(unit, fieldMask))
	if f.BitOff > 0 {
		val = g.bd.Shl(val, ir.ConstInt(unit, uint64(f.BitOff)))
	}
	merged := g.bd.Or(cleared, val)
	g.bd.Store(merged, lv.addr)
	return nil
}

// loadBitfieldVector reads a bit field lane-by-lane from the unit's
// <W x i1> view, so poison in sibling fields never touches this one.
func (g *irgen) loadBitfieldVector(lv clval) (cval, error) {
	f := lv.bf
	unit := ir.Int(f.Ty.Bits)
	vecTy := ir.Vec(f.Ty.Bits, ir.I1)
	word := g.bd.Load(vecTy, lv.addr)
	var acc ir.Value
	for i := uint(0); i < f.BitWidth; i++ {
		lane := g.bd.ExtractElement(word, ir.ConstInt(ir.I32, uint64(f.BitOff+i)))
		wide := g.bd.ZExt(lane, unit)
		if i > 0 {
			wide = g.bd.Shl(wide, ir.ConstInt(unit, uint64(i)))
		}
		if acc == nil {
			acc = wide
		} else {
			acc = g.bd.Or(acc, wide)
		}
	}
	// Extend from the field width with the field's signedness.
	var v ir.Value = acc
	if f.BitWidth < f.Ty.Bits {
		nv := g.bd.Trunc(v, ir.Int(f.BitWidth))
		if f.Ty.Unsigned {
			v = g.bd.ZExt(nv, unit)
		} else {
			v = g.bd.SExt(nv, unit)
		}
	}
	return cval{v, f.Ty}, nil
}

// storeBitfieldVector lowers a bit-field store through a <W x i1>
// vector: load the unit as per-bit lanes, insertelement the field's
// bits, store back. Poison in untouched lanes stays in those lanes —
// no freeze required (§5.3's superior alternative).
func (g *irgen) storeBitfieldVector(lv clval, v ir.Value) error {
	f := lv.bf
	vecTy := ir.Vec(f.Ty.Bits, ir.I1)
	word := g.bd.Load(vecTy, lv.addr)
	var cur ir.Value = word
	for i := uint(0); i < f.BitWidth; i++ {
		// Extract bit i of the stored value as an i1.
		var bit ir.Value = v
		if i > 0 {
			bit = g.bd.Binop(ir.OpLShr, 0, v, ir.ConstInt(v.Type(), uint64(i)))
		}
		b1 := g.bd.Trunc(bit, ir.I1)
		cur = g.bd.InsertElement(cur, b1, ir.ConstInt(ir.I32, uint64(f.BitOff+i)))
	}
	g.bd.Store(cur, lv.addr)
	return nil
}
