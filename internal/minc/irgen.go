package minc

import (
	"fmt"

	"tameir/internal/ir"
)

// BitfieldLowering selects how bit-field stores are lowered (§5.3).
type BitfieldLowering uint8

const (
	// BitfieldWord is the standard lowering: load the containing word,
	// (freeze it,) mask, or, store. Needs FreezeBitfieldLoads under
	// the Freeze semantics.
	BitfieldWord BitfieldLowering = iota
	// BitfieldVector is §5.3's "superior alternative": operate on the
	// unit as a <W x i1> vector with insertelement, so poison stays
	// per-bit and no freeze is needed ("they allow perfect
	// store-forwarding (no freezes)"). The paper notes it is "not well
	// supported by LLVM's backend" — and indeed the VX64 backend
	// rejects vectors, so this mode runs only on the interpreter;
	// exactly the paper's situation.
	BitfieldVector
)

// Config controls the paper-relevant lowering decisions.
type Config struct {
	// FreezeBitfieldLoads is the frontend's one-line §5.3 change: the
	// word loaded by a bit-field store is frozen, so the first store
	// to a fresh struct does not smear poison over the sibling fields.
	// It must be on under the Freeze semantics and off (there is
	// nothing to freeze) under the legacy semantics, where
	// uninitialized loads give undef and the combine is harmless.
	FreezeBitfieldLoads bool

	// Bitfields selects the §5.3 store lowering strategy.
	Bitfields BitfieldLowering
}

// CompileString parses and lowers MinC source to an IR module.
func CompileString(src string, cfg Config) (*ir.Module, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(prog, cfg)
}

// Compile lowers a parsed program.
func Compile(prog *Program, cfg Config) (*ir.Module, error) {
	g := &irgen{cfg: cfg, mod: ir.NewModule(), funcs: map[string]*ir.Func{}, globals: map[string]*globalInfo{}}
	return g.run(prog)
}

type globalInfo struct {
	g  *ir.Global
	ty *CType
}

type irgen struct {
	cfg     Config
	mod     *ir.Module
	funcs   map[string]*ir.Func
	globals map[string]*globalInfo

	// per-function state
	fn     *ir.Func
	bd     *ir.Builder
	scopes []map[string]*local
	retTy  *CType
	// loops is the break/continue target stack.
	loops []loopTargets
}

type loopTargets struct {
	brk, cont *ir.Block
}

type local struct {
	addr ir.Value // alloca
	ty   *CType
}

// cval is a typed rvalue.
type cval struct {
	v  ir.Value
	ty *CType
}

// clval is a typed lvalue: an address plus optional bit-field window.
type clval struct {
	addr ir.Value
	ty   *CType
	bf   *Field // non-nil for bit-field lvalues
}

func irType(t *CType) (ir.Type, error) {
	switch t.Kind {
	case CInt:
		return ir.Int(t.Bits), nil
	case CPtr:
		return ir.Ptr, nil
	}
	return ir.Type{}, fmt.Errorf("minc: type %s has no first-class IR form", t)
}

func (g *irgen) run(prog *Program) (*ir.Module, error) {
	for _, gd := range prog.Globals {
		blob := &ir.Global{Nam: gd.Name, Size: gd.Ty.Size()}
		// C globals are zero-initialized; explicit initializers
		// overwrite a prefix.
		blob.Init = make([]byte, blob.Size)
		if len(gd.Init) > 0 {
			esz := gd.Ty.Size()
			ty := gd.Ty
			if ty.Kind == CArray {
				esz = ty.Elem.Size()
			}
			if uint32(len(gd.Init))*esz > blob.Size {
				return nil, fmt.Errorf("minc: initializer for %s too long", gd.Name)
			}
			for vi, v := range gd.Init {
				for b := uint32(0); b < esz; b++ {
					blob.Init[uint32(vi)*esz+b] = byte(v >> (8 * b))
				}
			}
		}
		g.mod.AddGlobal(blob)
		g.globals[gd.Name] = &globalInfo{g: blob, ty: gd.Ty}
	}
	// Declare function shells first so calls resolve in any order.
	for _, fd := range prog.Funcs {
		retTy := ir.Void
		if fd.Ret.Kind != CVoid {
			t, err := irType(fd.Ret)
			if err != nil {
				return nil, err
			}
			retTy = t
		}
		var params []*ir.Param
		for _, p := range fd.Params {
			t, err := irType(p.Ty)
			if err != nil {
				return nil, err
			}
			params = append(params, ir.NewParam(p.Name, t))
		}
		fn := ir.NewFunc(fd.Name, retTy, params...)
		if g.funcs[fd.Name] != nil {
			return nil, fmt.Errorf("minc: duplicate function %s", fd.Name)
		}
		g.funcs[fd.Name] = fn
		g.mod.AddFunc(fn)
	}
	for _, fd := range prog.Funcs {
		if err := g.genFunc(fd); err != nil {
			return nil, err
		}
	}
	return g.mod, nil
}

func (g *irgen) pushScope() { g.scopes = append(g.scopes, map[string]*local{}) }
func (g *irgen) popScope()  { g.scopes = g.scopes[:len(g.scopes)-1] }

func (g *irgen) lookup(name string) (*local, bool) {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if l, ok := g.scopes[i][name]; ok {
			return l, true
		}
	}
	return nil, false
}

func (g *irgen) declareLocal(name string, ty *CType) (*local, error) {
	var addr *ir.Instr
	switch ty.Kind {
	case CInt, CPtr:
		t, err := irType(ty)
		if err != nil {
			return nil, err
		}
		addr = g.entryAlloca(t, 1)
	case CArray, CStruct:
		addr = g.entryAlloca(ir.I8, ty.Size())
	default:
		return nil, fmt.Errorf("minc: cannot declare %s of type %s", name, ty)
	}
	l := &local{addr: addr, ty: ty}
	g.scopes[len(g.scopes)-1][name] = l
	return l, nil
}

// entryAlloca places allocas in the entry block (the backend requires
// it, and mem2reg prefers it).
func (g *irgen) entryAlloca(elem ir.Type, count uint32) *ir.Instr {
	entry := g.fn.Entry()
	in := ir.NewInstr(ir.OpAlloca, ir.Ptr, ir.ConstInt(ir.I32, uint64(count)))
	in.AllocTy = elem
	in.Nam = g.fn.GenName("slot")
	if len(entry.Instrs()) == 0 {
		entry.Append(in)
	} else {
		entry.InsertBefore(in, entry.Instrs()[0])
	}
	return in
}

func (g *irgen) genFunc(fd *FuncDecl) error {
	g.fn = g.funcs[fd.Name]
	g.retTy = fd.Ret
	entry := g.fn.NewBlock("entry")
	g.bd = ir.NewBuilder(entry)
	// Anchor instruction so entryAlloca has an insertion point; it
	// will be the terminator for now.
	anchor := g.bd.Unreachable()

	g.scopes = nil
	g.pushScope()
	// Parameters spill to allocas (address-of works; mem2reg cleans).
	for i, p := range fd.Params {
		l, err := g.declareLocal(p.Name, p.Ty)
		if err != nil {
			return err
		}
		st := ir.NewInstr(ir.OpStore, ir.Void, g.fn.Params[i], l.addr)
		entry.InsertBefore(st, anchor)
	}
	entry.Remove(anchor)
	// Anchor removal leaves the entry unterminated; genBlock appends.
	if err := g.genBlock(fd.Body); err != nil {
		return err
	}
	// Fall-off-the-end: return 0 (or void). C's main convention.
	if g.bd.Block().Terminator() == nil {
		if fd.Ret.Kind == CVoid {
			g.bd.Ret(nil)
		} else {
			t, err := irType(fd.Ret)
			if err != nil {
				return err
			}
			g.bd.Ret(ir.ConstInt(t, 0))
		}
	}
	g.popScope()
	return ir.Verify(g.fn, ir.VerifyLegacy)
}

func (g *irgen) genBlock(b *Block) error {
	g.pushScope()
	defer g.popScope()
	for _, s := range b.Stmts {
		if err := g.genStmt(s); err != nil {
			return err
		}
		if g.bd.Block().Terminator() != nil {
			break // unreachable code after return
		}
	}
	return nil
}

func (g *irgen) genStmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		return g.genBlock(st)
	case *Decl:
		l, err := g.declareLocal(st.Name, st.Ty)
		if err != nil {
			return err
		}
		if st.Init != nil {
			v, err := g.genExpr(st.Init)
			if err != nil {
				return err
			}
			cv, err := g.convert(v, st.Ty, st.Line)
			if err != nil {
				return err
			}
			g.bd.Store(cv.v, l.addr)
		}
		return nil
	case *ExprStmt:
		_, err := g.genExpr(st.E)
		return err
	case *Return:
		if st.E == nil {
			g.bd.Ret(nil)
			return nil
		}
		v, err := g.genExpr(st.E)
		if err != nil {
			return err
		}
		cv, err := g.convert(v, g.retTy, st.Line)
		if err != nil {
			return err
		}
		g.bd.Ret(cv.v)
		return nil
	case *If:
		cond, err := g.genCond(st.Cond)
		if err != nil {
			return err
		}
		thenB := g.fn.NewBlock("if.then")
		elseB := g.fn.NewBlock("if.else")
		contB := g.fn.NewBlock("if.end")
		g.bd.CondBr(cond, thenB, elseB)
		g.bd.SetBlock(thenB)
		if err := g.genStmt(st.Then); err != nil {
			return err
		}
		if g.bd.Block().Terminator() == nil {
			g.bd.Br(contB)
		}
		g.bd.SetBlock(elseB)
		if st.Else != nil {
			if err := g.genStmt(st.Else); err != nil {
				return err
			}
		}
		if g.bd.Block().Terminator() == nil {
			g.bd.Br(contB)
		}
		g.bd.SetBlock(contB)
		// A cont block with no predecessors still needs a terminator;
		// it will be removed as unreachable by the optimizer.
		return nil
	case *While:
		head := g.fn.NewBlock("while.head")
		body := g.fn.NewBlock("while.body")
		exit := g.fn.NewBlock("while.end")
		g.bd.Br(head)
		g.bd.SetBlock(head)
		cond, err := g.genCond(st.Cond)
		if err != nil {
			return err
		}
		g.bd.CondBr(cond, body, exit)
		g.bd.SetBlock(body)
		g.loops = append(g.loops, loopTargets{brk: exit, cont: head})
		err = g.genStmt(st.Body)
		g.loops = g.loops[:len(g.loops)-1]
		if err != nil {
			return err
		}
		if g.bd.Block().Terminator() == nil {
			g.bd.Br(head)
		}
		g.bd.SetBlock(exit)
		return nil
	case *For:
		g.pushScope()
		defer g.popScope()
		if st.Init != nil {
			if err := g.genStmt(st.Init); err != nil {
				return err
			}
		}
		head := g.fn.NewBlock("for.head")
		body := g.fn.NewBlock("for.body")
		post := g.fn.NewBlock("for.post")
		exit := g.fn.NewBlock("for.end")
		g.bd.Br(head)
		g.bd.SetBlock(head)
		if st.Cond != nil {
			cond, err := g.genCond(st.Cond)
			if err != nil {
				return err
			}
			g.bd.CondBr(cond, body, exit)
		} else {
			g.bd.Br(body)
		}
		g.bd.SetBlock(body)
		g.loops = append(g.loops, loopTargets{brk: exit, cont: post})
		err := g.genStmt(st.Body)
		g.loops = g.loops[:len(g.loops)-1]
		if err != nil {
			return err
		}
		if g.bd.Block().Terminator() == nil {
			g.bd.Br(post)
		}
		g.bd.SetBlock(post)
		if st.Post != nil {
			if err := g.genStmt(st.Post); err != nil {
				return err
			}
		}
		if g.bd.Block().Terminator() == nil {
			g.bd.Br(head)
		}
		g.bd.SetBlock(exit)
		return nil
	case *BreakStmt:
		if len(g.loops) == 0 {
			return fmt.Errorf("minc: line %d: break outside loop", st.Line)
		}
		g.bd.Br(g.loops[len(g.loops)-1].brk)
		return nil
	case *ContinueStmt:
		if len(g.loops) == 0 {
			return fmt.Errorf("minc: line %d: continue outside loop", st.Line)
		}
		g.bd.Br(g.loops[len(g.loops)-1].cont)
		return nil
	}
	return fmt.Errorf("minc: unhandled statement %T", s)
}

// genCond evaluates e as an i1 truth value.
func (g *irgen) genCond(e Expr) (ir.Value, error) {
	v, err := g.genExpr(e)
	if err != nil {
		return nil, err
	}
	if v.ty.Kind == CPtr {
		return g.bd.ICmp(ir.PredNE, v.v, ir.ConstInt(ir.Ptr, 0)), nil
	}
	return g.bd.ICmp(ir.PredNE, v.v, ir.ConstInt(v.v.Type(), 0)), nil
}
