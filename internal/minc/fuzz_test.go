package minc

import (
	"testing"

	"tameir/internal/ir"
)

// FuzzCompileString checks the whole frontend (lexer, parser, type
// checker, IR generation) never panics, and that accepted programs
// lower to verifiable IR.
func FuzzCompileString(f *testing.F) {
	seeds := []string{
		"",
		"int main() { return 0; }",
		"int main() { int a = 1; return a + 2 * 3; }",
		"struct s { int a : 3; unsigned b : 5; }; int main() { struct s x; x.a = 1; return x.a; }",
		"int g[4] = {1,2,3,4}; int main() { return g[2]; }",
		"int f(int n) { if (n < 2) return n; return f(n-1) + f(n-2); } int main() { return f(5); }",
		"int main() { for (int i = 0; i < 3; i += 1) { if (i == 1) continue; if (i == 2) break; } return 0; }",
		"int main() { int a[3]; int *p = &a[0]; *p = 5; return *(p + 0); }",
		"long isqrt(long v) { return v / 2; } int main() { return (int)isqrt(16); }",
		"int main() { return 1 && 0 || !2; }",
		"int main() { unsigned char c = 300; return (int)c >> 1 << 2; }",
		"int main() { return sizeof(long); }",
		"int main() { int x = 0; x += 1; x <<= 2; x %= 3; return x; }",
		"/* comment */ int main() { return 'A'; } // end",
		"int main() { return 0x7fffffff; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			return
		}
		mod, err := CompileString(src, Config{FreezeBitfieldLoads: true})
		if err != nil {
			return
		}
		if verr := ir.VerifyModule(mod, ir.VerifyFreeze); verr != nil {
			t.Fatalf("frontend emitted invalid IR: %v\nsource:\n%s\nIR:\n%s", verr, src, mod)
		}
	})
}
