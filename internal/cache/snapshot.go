package cache

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"

	"tameir/internal/telemetry"
)

// Snapshot files are how -cache-dir warm starts work: a cache writes
// its serializable content (memo behaviour sets, lowering-cache
// metadata) to <dir>/<kind>.snap after a run and the next run loads it
// before doing any work. The format is a gob stream: a header carrying
// a magic string, the format version, the snapshot kind and the
// caller's semantics fingerprint, followed by the payload.
//
// The load path enforces wholesale rejection: the header is checked
// and the payload decoded completely before anything is returned, and
// any mismatch — wrong magic, wrong version, wrong kind, wrong
// fingerprint, truncated or corrupt payload — yields ErrStale with the
// payload untouched by the caller. A snapshot is therefore either
// applied in full or not at all, which is what makes the verdict
// argument go through: every entry a loaded snapshot contributes is
// keyed by the same full canonical strings a live run would produce,
// so a warm lookup can only ever return what a cold run would have
// computed (guarded by the fingerprint against semantics drift between
// builds).

// FormatVersion is the snapshot encoding version. Bump on any change
// to the header or payload shapes; old files are then rejected as
// stale rather than misread.
const FormatVersion = 1

// snapshotMagic guards against feeding arbitrary files to the decoder.
const snapshotMagic = "tameir-cache"

// ErrStale reports a snapshot that does not match the running build:
// wrong version, kind or fingerprint, or a corrupt payload. Callers
// treat it as "no snapshot" and run cold.
var ErrStale = errors.New("cache: stale or mismatched snapshot")

type snapshotHeader struct {
	Magic       string
	Version     int
	Kind        string
	Fingerprint string
}

// WriteFile writes payload as a versioned snapshot at path, atomically
// (temp file + rename), stamped with kind and fingerprint.
func WriteFile(path, kind, fingerprint string, payload any) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	bw := bufio.NewWriter(tmp)
	enc := gob.NewEncoder(bw)
	hdr := snapshotHeader{Magic: snapshotMagic, Version: FormatVersion, Kind: kind, Fingerprint: fingerprint}
	if err := enc.Encode(hdr); err == nil {
		err = enc.Encode(payload)
	}
	if err == nil {
		err = bw.Flush()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile loads the snapshot at path into payload after verifying
// kind and fingerprint. A missing file surfaces as fs.ErrNotExist; any
// header mismatch or decode failure surfaces as ErrStale (wrapped with
// detail) with no guarantee about payload's partial state — callers
// must decode into a scratch value and apply only on nil error.
func ReadFile(path, kind, fingerprint string, payload any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	dec := gob.NewDecoder(bufio.NewReader(f))
	var hdr snapshotHeader
	if err := dec.Decode(&hdr); err != nil {
		return fmt.Errorf("%w: %s: bad header: %v", ErrStale, path, err)
	}
	if hdr.Magic != snapshotMagic || hdr.Version != FormatVersion {
		return fmt.Errorf("%w: %s: format %q v%d, want %q v%d",
			ErrStale, path, hdr.Magic, hdr.Version, snapshotMagic, FormatVersion)
	}
	if hdr.Kind != kind {
		return fmt.Errorf("%w: %s: kind %q, want %q", ErrStale, path, hdr.Kind, kind)
	}
	if hdr.Fingerprint != fingerprint {
		return fmt.Errorf("%w: %s: fingerprint %q, want %q", ErrStale, path, hdr.Fingerprint, fingerprint)
	}
	if err := dec.Decode(payload); err != nil {
		return fmt.Errorf("%w: %s: bad payload: %v", ErrStale, path, err)
	}
	return nil
}

// Dir manages one -cache-dir: a directory of snapshot files, one per
// kind, all stamped with the same semantics fingerprint, plus the disk
// traffic counters the telemetry layer promises.
type Dir struct {
	path        string
	fingerprint string

	loads        atomic.Uint64
	staleRejects atomic.Uint64
}

// NewDir returns a handle on the snapshot directory at path. The
// directory is created on first Save, not here, so a read-only warm
// start never writes.
func NewDir(path, fingerprint string) *Dir {
	return &Dir{path: path, fingerprint: fingerprint}
}

// Path returns the directory path.
func (d *Dir) Path() string { return d.path }

func (d *Dir) file(kind string) string {
	return filepath.Join(d.path, kind+".snap")
}

// Load reads the kind's snapshot into payload. ok reports a usable
// snapshot was decoded in full; a missing file is (false, nil) and a
// stale or corrupt one counts a rejection and is also (false, nil) —
// both mean "run cold". Only I/O errors other than absence surface.
func (d *Dir) Load(kind string, payload any) (ok bool, err error) {
	err = ReadFile(d.file(kind), kind, d.fingerprint, payload)
	switch {
	case err == nil:
		d.loads.Add(1)
		return true, nil
	case errors.Is(err, fs.ErrNotExist):
		return false, nil
	case errors.Is(err, ErrStale):
		d.staleRejects.Add(1)
		return false, nil
	}
	return false, err
}

// Save writes the kind's snapshot, creating the directory on first
// use.
func (d *Dir) Save(kind string, payload any) error {
	if err := os.MkdirAll(d.path, 0o755); err != nil {
		return err
	}
	return WriteFile(d.file(kind), kind, d.fingerprint, payload)
}

// Loads returns the number of snapshots loaded in full.
func (d *Dir) Loads() uint64 { return d.loads.Load() }

// StaleRejects returns the number of snapshots rejected wholesale.
func (d *Dir) StaleRejects() uint64 { return d.staleRejects.Load() }

// DiskStats is a point-in-time copy of persistent-cache traffic: files
// loaded, lookups served by disk-loaded entries (counted by the caches
// that track provenance), and wholesale rejections.
type DiskStats struct {
	Loads        uint64
	Hits         uint64
	StaleRejects uint64
}

// Publish exports the counters the warm-start CI gate asserts on.
func (s DiskStats) Publish(reg *telemetry.Registry, class telemetry.Class) {
	reg.Counter("cache_disk_loads_total", class,
		"persistent cache snapshots loaded in full").Add(s.Loads)
	reg.Counter("cache_disk_hits_total", class,
		"cache lookups served by disk-loaded entries").Add(s.Hits)
	reg.Counter("cache_disk_stale_rejects_total", class,
		"persistent cache snapshots rejected wholesale").Add(s.StaleRejects)
}
