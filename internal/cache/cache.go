// Package cache is the repo's generic concurrency-safe cache layer:
// the lock-sharded bounded table, second-chance clock eviction, and
// lock-striped get-or-create map that core.ProgramCache, refine.Memo
// and the bytecode lowering cache all instantiate, plus the versioned
// snapshot files behind -cache-dir warm starts (snapshot.go).
//
// The layer deliberately exposes mechanism, not policy. Each cache in
// the repo has its own keying discipline (full canonical strings so a
// hit can never be a collision; pointer identity plus a verified-text
// escape hatch) and its own invariant ("a cache hit or eviction never
// changes a verdict"); those live with the instantiations. What is
// shared — and what this package owns — is the concurrency shape:
// per-shard mutexes guard entry state, a single clock ring guards
// residency, and the only compound lock order anywhere is ring → shard
// (Clock.Admit takes shard locks through its callbacks while holding
// the ring; insert paths hold only their shard), so the layer cannot
// deadlock no matter how instantiations interleave.
package cache

import (
	"hash/fnv"
	"sync"
	"sync/atomic"

	"tameir/internal/telemetry"
)

// Clock is a bounded second-chance eviction ring over opaque
// references. Admit appends until the cap is reached, then sweeps: the
// hand clears reference bits (via recentlyUsed, which must report and
// clear in one step) until a cold victim turns up, evicts it, and
// installs the newcomer in its slot. A referenced entry therefore
// survives one full revolution after its last hit — the policy
// refine.Memo shipped with and ProgramCache copied.
//
// The ring holds its own mutex across the whole sweep. Callbacks may
// (and in every instantiation do) take per-shard entry locks; callers
// must never invoke Admit while holding such a lock, or the ring →
// shard order inverts.
type Clock[R any] struct {
	mu        sync.Mutex
	max       int
	refs      []R
	hand      int
	evictions atomic.Uint64
}

// NewClock returns a ring admitting at most max references (max must
// be positive).
func NewClock[R any](max int) *Clock[R] {
	if max <= 0 {
		panic("cache: NewClock needs a positive capacity")
	}
	return &Clock[R]{max: max}
}

// Cap returns the ring's capacity.
func (c *Clock[R]) Cap() int { return c.max }

// Len returns the number of admitted references (approximate while
// concurrent admissions are in flight).
func (c *Clock[R]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.refs)
}

// Evictions returns the number of references evicted by the sweep.
func (c *Clock[R]) Evictions() uint64 { return c.evictions.Load() }

// Admit registers r, evicting one cold reference first when the ring
// is full. recentlyUsed reports whether the candidate victim was hit
// since the hand last passed, clearing its reference bit either way;
// evict removes the chosen victim from its owner. Both run with the
// ring lock held. The sweep terminates within two revolutions: the
// first lap clears every reference bit.
func (c *Clock[R]) Admit(r R, recentlyUsed func(R) bool, evict func(R)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.refs) < c.max {
		c.refs = append(c.refs, r)
		return
	}
	for {
		v := c.refs[c.hand]
		if recentlyUsed(v) {
			c.hand = (c.hand + 1) % len(c.refs)
			continue
		}
		evict(v)
		c.refs[c.hand] = r
		c.hand = (c.hand + 1) % len(c.refs)
		c.evictions.Add(1)
		return
	}
}

// StringHash is the layer's shared string hash (FNV-32a), exposed so
// instantiations that shard by string agree with StringMap's stripe
// selection.
func StringHash(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return h.Sum32()
}

// StringMap is a lock-striped, string-keyed get-or-create map for
// values that carry their own stripe-guarded mutable state: the
// constructor receives the stripe mutex so the value can keep it and
// guard its interior with it afterwards (refine.Memo's per-function
// entries do exactly that). Entries are never removed by the map
// itself; bounded residency is the Clock's job, and it reaches into
// entries, not into this index.
type StringMap[V any] struct {
	stripes []mapStripe[V]
}

type mapStripe[V any] struct {
	mu sync.Mutex
	m  map[string]V
}

// NewStringMap returns a map striped over n locks (n must be
// positive).
func NewStringMap[V any](n int) *StringMap[V] {
	if n <= 0 {
		panic("cache: NewStringMap needs a positive stripe count")
	}
	s := &StringMap[V]{stripes: make([]mapStripe[V], n)}
	for i := range s.stripes {
		s.stripes[i].m = make(map[string]V)
	}
	return s
}

// GetOrCreate returns the value under key, calling mk under the stripe
// lock to create it on first use. mk receives the stripe mutex that
// will guard the entry from then on.
func (s *StringMap[V]) GetOrCreate(key string, mk func(mu *sync.Mutex) V) V {
	st := &s.stripes[StringHash(key)%uint32(len(s.stripes))]
	st.mu.Lock()
	v, ok := st.m[key]
	if !ok {
		v = mk(&st.mu)
		st.m[key] = v
	}
	st.mu.Unlock()
	return v
}

// Range visits every entry with its stripe lock held, so f may read
// stripe-guarded interior state. Stripes are visited in index order,
// keys within a stripe in map order; callers that need deterministic
// output sort what they collect.
func (s *StringMap[V]) Range(f func(key string, v V)) {
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for k, v := range st.m {
			f(k, v)
		}
		st.mu.Unlock()
	}
}

// Table is a bounded, lock-sharded map with second-chance eviction —
// the generic shape under core.ProgramCache and the bytecode lowering
// cache. Values live behind per-entry cells so the onHit callback can
// mutate a hit in place under the shard lock (the ProgramCache
// verified path recompiles stale programs that way). compute also runs
// under the shard lock, which serializes duplicate misses on the same
// key instead of computing twice.
type Table[K comparable, V any] struct {
	hash   func(K) uint32 // nil: single shard
	shards []tableShard[K, V]
	clock  *Clock[K]

	hits, misses atomic.Uint64
}

type tableShard[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*tableEntry[V]
}

type tableEntry[V any] struct {
	v   V
	ref bool
}

// NewTable returns a table bounded to max entries, sharded over
// nShards locks selected by hash. A nil hash forces a single shard
// (the only option for keys with no cheap hash, e.g. struct keys
// containing pointers).
func NewTable[K comparable, V any](max, nShards int, hash func(K) uint32) *Table[K, V] {
	if max <= 0 {
		panic("cache: NewTable needs a positive capacity")
	}
	if hash == nil || nShards <= 1 {
		nShards = 1
		hash = nil
	}
	t := &Table[K, V]{hash: hash, shards: make([]tableShard[K, V], nShards), clock: NewClock[K](max)}
	for i := range t.shards {
		t.shards[i].m = make(map[K]*tableEntry[V])
	}
	return t
}

func (t *Table[K, V]) shardFor(k K) *tableShard[K, V] {
	if t.hash == nil {
		return &t.shards[0]
	}
	return &t.shards[t.hash(k)%uint32(len(t.shards))]
}

// GetOrCompute returns the value under k, computing and admitting it
// on a miss. On a hit the entry's reference bit is set and onHit (when
// non-nil) may mutate the stored value in place; both happen under the
// shard lock. hit reports which path ran.
func (t *Table[K, V]) GetOrCompute(k K, compute func() V, onHit func(*V)) (v V, hit bool) {
	sh := t.shardFor(k)
	sh.mu.Lock()
	if e, ok := sh.m[k]; ok {
		t.hits.Add(1)
		e.ref = true
		if onHit != nil {
			onHit(&e.v)
		}
		v = e.v
		sh.mu.Unlock()
		return v, true
	}
	t.misses.Add(1)
	v = compute()
	sh.m[k] = &tableEntry[V]{v: v}
	sh.mu.Unlock()
	// Ring → shard order: the insert above held only the shard lock, so
	// admitting afterwards cannot deadlock against a concurrent sweep.
	t.clock.Admit(k,
		func(victim K) bool {
			vs := t.shardFor(victim)
			vs.mu.Lock()
			defer vs.mu.Unlock()
			e := vs.m[victim]
			if e == nil || !e.ref {
				return false
			}
			e.ref = false
			return true
		},
		func(victim K) {
			vs := t.shardFor(victim)
			vs.mu.Lock()
			defer vs.mu.Unlock()
			delete(vs.m, victim)
		})
	return v, false
}

// Get returns the value under k without computing, setting the
// reference bit on a hit.
func (t *Table[K, V]) Get(k K) (v V, ok bool) {
	sh := t.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, found := sh.m[k]; found {
		t.hits.Add(1)
		e.ref = true
		return e.v, true
	}
	t.misses.Add(1)
	return v, false
}

// Keys returns a copy of every resident key, in no particular order —
// the raw material for metadata snapshots.
func (t *Table[K, V]) Keys() []K {
	var out []K
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for k := range sh.m {
			out = append(out, k)
		}
		sh.mu.Unlock()
	}
	return out
}

// Range visits every resident entry with its shard lock held, shard
// by shard — the raw material for metadata snapshots. Visit order is
// unspecified; callers that need deterministic output sort what they
// collect. f must not call back into the table.
func (t *Table[K, V]) Range(f func(k K, v V)) {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for k, e := range sh.m {
			f(k, e.v)
		}
		sh.mu.Unlock()
	}
}

// Len returns the number of resident entries (approximate while
// concurrent inserts are between map insert and clock admission).
func (t *Table[K, V]) Len() int { return t.clock.Len() }

// Evictions returns the number of entries evicted by the clock.
func (t *Table[K, V]) Evictions() uint64 { return t.clock.Evictions() }

// Stats returns a point-in-time copy of the table's counters.
func (t *Table[K, V]) Stats() Stats {
	return Stats{
		Size:      t.clock.Len(),
		Capacity:  t.clock.Cap(),
		Hits:      t.hits.Load(),
		Misses:    t.misses.Load(),
		Evictions: t.clock.Evictions(),
	}
}

// Stats is a point-in-time copy of one cache's counters, with the
// optional telemetry hookup every instantiation shares.
type Stats struct {
	Size      int
	Capacity  int
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Publish exports the stats under <prefix>_{hits,misses,evictions}
// _total counters and <prefix>_{size,capacity} gauges.
func (s Stats) Publish(reg *telemetry.Registry, class telemetry.Class, prefix string) {
	reg.Counter(prefix+"_hits_total", class, "cache hits").Add(s.Hits)
	reg.Counter(prefix+"_misses_total", class, "cache misses").Add(s.Misses)
	reg.Counter(prefix+"_evictions_total", class, "cache clock evictions").Add(s.Evictions)
	reg.Gauge(prefix+"_size", class, "resident cache entries").Set(int64(s.Size))
	reg.Gauge(prefix+"_capacity", class, "cache entry cap").Set(int64(s.Capacity))
}
