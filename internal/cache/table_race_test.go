package cache

import (
	"sync"
	"testing"
)

// TestTableGetOrComputeEvictionPressure hammers a 2-slot table from
// many goroutines so every insert races an eviction, then checks the
// accounting invariants the telemetry layer publishes:
//
//   - hits + misses == lookups issued
//   - evictions can never exceed admissions (each eviction frees a
//     slot some admission filled)
//   - residency never exceeds capacity
//
// Run under -race this also exercises the shard-lock/clock-lock
// ordering on the hot path (see the race targets in the Makefile).
func TestTableGetOrComputeEvictionPressure(t *testing.T) {
	const (
		workers = 8
		rounds  = 2000
		keys    = 16 // 16 keys through 2 slots: nearly every insert evicts
	)
	tb := NewTable[int, int](2, 4, func(k int) uint32 { return uint32(k) })

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// Skewed traffic: a hot key that should stay resident
				// (hits) plus a cold tail that churns the 2 slots
				// (evictions).
				k := 0
				if i%3 == 0 {
					k = 1 + (i*7+w*13)%(keys-1)
				}
				v, _ := tb.GetOrCompute(k, func() int { return k * 10 }, nil)
				if v != k*10 {
					t.Errorf("key %d returned %d, want %d", k, v, k*10)
					return
				}
			}
		}()
	}
	wg.Wait()

	st := tb.Stats()
	lookups := uint64(workers * rounds)
	if st.Hits+st.Misses != lookups {
		t.Fatalf("hits(%d) + misses(%d) = %d, want lookups %d",
			st.Hits, st.Misses, st.Hits+st.Misses, lookups)
	}
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("degenerate run: hits=%d misses=%d", st.Hits, st.Misses)
	}
	// Every miss admits one entry; each eviction frees a slot one of
	// those admissions filled, and at most capacity admissions can be
	// resident un-evicted.
	if st.Evictions > st.Misses {
		t.Fatalf("evictions(%d) exceed admissions(%d)", st.Evictions, st.Misses)
	}
	if st.Evictions == 0 {
		t.Fatal("16 keys through 2 slots never evicted — pressure test is not pressuring")
	}
	if st.Size > st.Capacity {
		t.Fatalf("size %d over capacity %d", st.Size, st.Capacity)
	}
}
