package cache

import (
	"fmt"
	"sync"
	"testing"

	"tameir/internal/telemetry"
)

// The clock must give a recently-used resident a second chance and
// evict the first cold one past the hand.
func TestClockSecondChance(t *testing.T) {
	c := NewClock[int](2)
	used := map[int]bool{}
	var evicted []int
	recentlyUsed := func(r int) bool {
		u := used[r]
		used[r] = false
		return u
	}
	evict := func(r int) { evicted = append(evicted, r) }

	c.Admit(1, recentlyUsed, evict)
	c.Admit(2, recentlyUsed, evict)
	if c.Len() != 2 || len(evicted) != 0 {
		t.Fatalf("fill: len=%d evicted=%v", c.Len(), evicted)
	}

	used[1] = true // 1 is hot, 2 is cold
	c.Admit(3, recentlyUsed, evict)
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("expected the cold resident 2 evicted, got %v", evicted)
	}
	if used[1] {
		t.Fatal("the sweep must clear the reference bit it spared")
	}
	if c.Len() != 2 || c.Evictions() != 1 {
		t.Fatalf("len=%d evictions=%d, want 2/1", c.Len(), c.Evictions())
	}

	// Everything cold now: the next admission evicts exactly one more.
	c.Admit(4, recentlyUsed, evict)
	if len(evicted) != 2 || c.Len() != 2 || c.Evictions() != 2 {
		t.Fatalf("second admission: evicted=%v len=%d", evicted, c.Len())
	}
}

// A non-positive capacity is a programming error (callers express
// "unbounded" at the Table/Memo layer with their own defaults), and
// the ring rejects it loudly rather than silently evicting everything.
func TestClockRejectsNonPositiveCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClock(0) did not panic")
		}
	}()
	NewClock[int](0)
}

func TestTableGetOrCompute(t *testing.T) {
	tbl := NewTable[string, int](2, 4, StringHash)
	computes := 0
	get := func(k string) (int, bool) {
		return tbl.GetOrCompute(k, func() int { computes++; return len(k) }, nil)
	}

	if v, hit := get("a"); v != 1 || hit {
		t.Fatalf("first get: v=%d hit=%v", v, hit)
	}
	onHit := 0
	if v, hit := tbl.GetOrCompute("a", func() int { t.Fatal("recompute on hit"); return 0 }, func(p *int) { onHit++; *p = 7 }); !hit || v != 7 {
		t.Fatalf("hit path: v=%d hit=%v", v, hit)
	}
	if onHit != 1 {
		t.Fatal("onHit not invoked under the shard lock")
	}

	// Fill past capacity: "a" was just hit (reference bit set), so the
	// sweep spares it and evicts the cold "b".
	get("b")
	get("c")
	if tbl.Len() != 2 {
		t.Fatalf("len=%d, want 2", tbl.Len())
	}
	if _, ok := tbl.Get("b"); ok {
		t.Fatal("cold entry b should have been evicted")
	}
	if v, ok := tbl.Get("a"); !ok || v != 7 {
		t.Fatalf("hot entry a lost: v=%d ok=%v", v, ok)
	}

	// Get counts traffic too: miss(a) hit(a) miss(b) miss(c) above,
	// then Get(b) missed and Get(a) hit.
	st := tbl.Stats()
	if st.Hits != 2 || st.Misses != 4 || st.Evictions != 1 || st.Size != 2 || st.Capacity != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if computes != 3 {
		t.Fatalf("computes = %d, want 3", computes)
	}
}

// A nil hash collapses the table to one shard — the pointer-keyed
// ProgramCache configuration.
func TestTableSingleShard(t *testing.T) {
	type key struct{ p *int }
	tbl := NewTable[key, string](4, 8, nil)
	a, b := new(int), new(int)
	tbl.GetOrCompute(key{a}, func() string { return "a" }, nil)
	tbl.GetOrCompute(key{b}, func() string { return "b" }, nil)
	if v, ok := tbl.Get(key{a}); !ok || v != "a" {
		t.Fatalf("single-shard get: %q %v", v, ok)
	}
	if got := len(tbl.Keys()); got != 2 || tbl.Len() != 2 {
		t.Fatalf("keys=%d len=%d", got, tbl.Len())
	}
}

func TestStringMapGetOrCreate(t *testing.T) {
	m := NewStringMap[*int](16)
	made := 0
	mk := func(mu *sync.Mutex) *int {
		if mu == nil {
			t.Fatal("mk must receive the stripe mutex")
		}
		made++
		return new(int)
	}
	p := m.GetOrCreate("k", mk)
	if q := m.GetOrCreate("k", mk); q != p || made != 1 {
		t.Fatalf("GetOrCreate not idempotent: made=%d", made)
	}

	var wg sync.WaitGroup
	got := make([]*int, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = m.GetOrCreate("race", func(mu *sync.Mutex) *int { return new(int) })
		}(i)
	}
	wg.Wait()
	for _, g := range got[1:] {
		if g != got[0] {
			t.Fatal("concurrent GetOrCreate returned distinct values for one key")
		}
	}

	seen := map[string]bool{}
	m.Range(func(key string, v *int) { seen[key] = true })
	if !seen["k"] || !seen["race"] || len(seen) != 2 {
		t.Fatalf("Range saw %v", seen)
	}
}

func TestStatsPublish(t *testing.T) {
	tbl := NewTable[string, int](4, 2, StringHash)
	tbl.GetOrCompute("x", func() int { return 1 }, nil)
	tbl.GetOrCompute("x", func() int { return 1 }, nil)
	reg := telemetry.NewRegistry()
	tbl.Stats().Publish(reg, telemetry.Scheduling, "testcache")
	for name, want := range map[string]uint64{
		"testcache_hits_total":   1,
		"testcache_misses_total": 1,
	} {
		if got := reg.Counter(name, telemetry.Scheduling, "").Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Gauge("testcache_size", telemetry.Scheduling, "").Value(); got != 1 {
		t.Errorf("testcache_size = %d, want 1", got)
	}
}

// StringHash must spread nearby keys (the shard selector depends on
// it) and stay stable across calls.
func TestStringHashStable(t *testing.T) {
	seen := map[uint32]bool{}
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("key-%d", i)
		h := StringHash(k)
		if h != StringHash(k) {
			t.Fatal("StringHash not deterministic")
		}
		seen[h] = true
	}
	if len(seen) < 32 {
		t.Fatalf("StringHash collapsed 64 keys into %d hashes", len(seen))
	}
}
