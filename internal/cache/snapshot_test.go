package cache

import (
	"bufio"
	"encoding/gob"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tameir/internal/telemetry"
)

type testPayload struct {
	A int
	B []string
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.snap")
	in := testPayload{A: 7, B: []string{"p", "q"}}
	if err := WriteFile(path, "memo", "fp-1", &in); err != nil {
		t.Fatal(err)
	}
	var out testPayload
	if err := ReadFile(path, "memo", "fp-1", &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip lost data: wrote %+v, read %+v", in, out)
	}
}

// Every header mismatch — fingerprint, kind, version, magic — and any
// payload corruption must reject the whole file as stale; a missing
// file is not stale, it is simply absent.
func TestSnapshotFileStaleRejection(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.snap")
	if err := WriteFile(path, "memo", "fp-1", &testPayload{A: 1}); err != nil {
		t.Fatal(err)
	}

	var out testPayload
	if err := ReadFile(path, "memo", "other-fp", &out); !errors.Is(err, ErrStale) {
		t.Fatalf("fingerprint mismatch: err = %v, want ErrStale", err)
	}
	if err := ReadFile(path, "lowerings", "fp-1", &out); !errors.Is(err, ErrStale) {
		t.Fatalf("kind mismatch: err = %v, want ErrStale", err)
	}

	// A future format version must be rejected, not misparsed.
	vpath := filepath.Join(dir, "v.snap")
	f, err := os.Create(vpath)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(f)
	if err := gob.NewEncoder(w).Encode(snapshotHeader{
		Magic: snapshotMagic, Version: FormatVersion + 1, Kind: "memo", Fingerprint: "fp-1",
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := ReadFile(vpath, "memo", "fp-1", &out); !errors.Is(err, ErrStale) {
		t.Fatalf("version mismatch: err = %v, want ErrStale", err)
	}

	// Garbage bytes: stale, never a decode panic or success.
	gpath := filepath.Join(dir, "g.snap")
	if err := os.WriteFile(gpath, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ReadFile(gpath, "memo", "fp-1", &out); !errors.Is(err, ErrStale) {
		t.Fatalf("corrupt file: err = %v, want ErrStale", err)
	}

	// Truncated payload after a valid header: stale too.
	tpath := filepath.Join(dir, "t.snap")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tpath, full[:len(full)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ReadFile(tpath, "memo", "fp-1", &out); !errors.Is(err, ErrStale) {
		t.Fatalf("truncated payload: err = %v, want ErrStale", err)
	}

	if err := ReadFile(filepath.Join(dir, "missing.snap"), "memo", "fp-1", &out); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file: err = %v, want fs.ErrNotExist", err)
	}
}

func TestDirLoadSaveAndCounters(t *testing.T) {
	dir := t.TempDir()
	d := NewDir(filepath.Join(dir, "cache"), "fp-1")

	var out testPayload
	ok, err := d.Load("memo", &out)
	if ok || err != nil {
		t.Fatalf("load from empty dir: ok=%v err=%v", ok, err)
	}
	if d.Loads() != 0 || d.StaleRejects() != 0 {
		t.Fatalf("missing files must count as neither loads nor rejects: %d/%d", d.Loads(), d.StaleRejects())
	}

	if err := d.Save("memo", &testPayload{A: 3, B: []string{"z"}}); err != nil {
		t.Fatal(err)
	}
	ok, err = d.Load("memo", &out)
	if !ok || err != nil || out.A != 3 {
		t.Fatalf("reload: ok=%v err=%v out=%+v", ok, err, out)
	}
	if d.Loads() != 1 {
		t.Fatalf("Loads = %d, want 1", d.Loads())
	}

	// A build with a different fingerprint sees only stale files.
	d2 := NewDir(filepath.Join(dir, "cache"), "fp-2")
	ok, err = d2.Load("memo", &out)
	if ok || err != nil {
		t.Fatalf("stale load must be (false, nil): ok=%v err=%v", ok, err)
	}
	if d2.Loads() != 0 || d2.StaleRejects() != 1 {
		t.Fatalf("stale counters: loads=%d rejects=%d", d2.Loads(), d2.StaleRejects())
	}
}

func TestDiskStatsPublish(t *testing.T) {
	reg := telemetry.NewRegistry()
	DiskStats{Loads: 2, Hits: 5, StaleRejects: 1}.Publish(reg, telemetry.Scheduling)
	for name, want := range map[string]uint64{
		"cache_disk_loads_total":         2,
		"cache_disk_hits_total":          5,
		"cache_disk_stale_rejects_total": 1,
	} {
		if got := reg.Counter(name, telemetry.Scheduling, "").Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}
