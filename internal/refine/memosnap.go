package refine

import (
	"sort"
)

// Memo persistence: Snapshot serializes a memo's behaviour sets,
// LoadSnapshot installs a snapshot into a (typically fresh) memo.
// Together with cache.Dir's versioned, fingerprinted files this is
// the -cache-dir warm start for campaigns.
//
// The correctness story is the same one the in-memory memo already
// tells: first-level keys are the full semantics fingerprint plus the
// canonical function text, second-level keys are the full input-vector
// key (or the ordinal in Check's deterministic enumeration, which that
// same first-level key pins). Nothing in a key is process-specific, so
// a reloaded entry answers a lookup with exactly the set a cold run
// would have computed — provided the build's semantics didn't change
// between runs, which is what the snapshot fingerprint
// (core.SemanticsFingerprint) rejects wholesale. Entries loaded from
// disk are flagged so their hits are countable as
// cache_disk_hits_total.

// MemoSnapshot is the serializable content of a Memo, in
// deterministic (sorted) order so identical memo contents encode to
// identical bytes.
type MemoSnapshot struct {
	Entries []MemoSnapshotEntry
}

// MemoSnapshotEntry is one per-function entry: its full first-level
// key plus both second levels.
type MemoSnapshotEntry struct {
	FuncKey  string
	Ordinals []OrdinalSetSnapshot
	Args     []ArgSetSnapshot
}

// OrdinalSetSnapshot is one ordinal-indexed behaviour set.
type OrdinalSetSnapshot struct {
	Ordinal int
	Set     BehaviorSetSnapshot
}

// ArgSetSnapshot is one input-vector-keyed behaviour set.
type ArgSetSnapshot struct {
	Key string
	Set BehaviorSetSnapshot
}

// BehaviorSetSnapshot is a BehaviorSet with the Rets map flattened to
// a sorted slice, for deterministic encoding. Incomplete sets are
// never cached, so the field has no snapshot counterpart.
type BehaviorSetSnapshot struct {
	UB, Poison, Undef, Void bool
	RetBits                 uint
	Rets                    []string
}

func snapshotSet(b BehaviorSet) BehaviorSetSnapshot {
	s := BehaviorSetSnapshot{UB: b.UB, Poison: b.Poison, Undef: b.Undef, Void: b.Void, RetBits: b.RetBits}
	if len(b.Rets) > 0 {
		s.Rets = make([]string, 0, len(b.Rets))
		for k := range b.Rets {
			s.Rets = append(s.Rets, k)
		}
		sort.Strings(s.Rets)
	}
	return s
}

func (s BehaviorSetSnapshot) restore() BehaviorSet {
	b := BehaviorSet{UB: s.UB, Poison: s.Poison, Undef: s.Undef, Void: s.Void, RetBits: s.RetBits}
	if len(s.Rets) > 0 {
		b.Rets = make(map[string]bool, len(s.Rets))
		for _, k := range s.Rets {
			b.Rets[k] = true
		}
	}
	return b
}

// Snapshot captures every cached behaviour set. Safe to call
// concurrently with lookups and stores; the result is a point-in-time
// copy, sorted for deterministic encoding.
func (m *Memo) Snapshot() *MemoSnapshot {
	snap := &MemoSnapshot{}
	m.funcs.Range(func(key string, e *memoFuncEntry) {
		// Range holds the entry's stripe lock, so the reads are safe.
		ent := MemoSnapshotEntry{FuncKey: key}
		for i := range e.byIdx {
			if e.byIdx[i].ok {
				ent.Ordinals = append(ent.Ordinals, OrdinalSetSnapshot{Ordinal: i, Set: snapshotSet(e.byIdx[i].set)})
			}
		}
		for k, s := range e.sets {
			ent.Args = append(ent.Args, ArgSetSnapshot{Key: k, Set: snapshotSet(s.set)})
		}
		if len(ent.Ordinals)+len(ent.Args) > 0 {
			snap.Entries = append(snap.Entries, ent)
		}
	})
	sort.Slice(snap.Entries, func(i, j int) bool { return snap.Entries[i].FuncKey < snap.Entries[j].FuncKey })
	for i := range snap.Entries {
		args := snap.Entries[i].Args
		sort.Slice(args, func(a, b int) bool { return args[a].Key < args[b].Key })
	}
	return snap
}

// LoadSnapshot installs every set from snap that is not already
// cached, marking the installed sets as disk-loaded, and returns the
// number installed. Installation goes through the same clock admission
// as live stores, so a snapshot larger than the memo's cap simply
// warms the cap's worth of entries.
func (m *Memo) LoadSnapshot(snap *MemoSnapshot) int {
	n := 0
	for _, ent := range snap.Entries {
		e := m.entryFor(ent.FuncKey)
		for _, o := range ent.Ordinals {
			if o.Ordinal < 0 {
				continue // defensive: never trust file contents blindly
			}
			e.mu.Lock()
			for len(e.byIdx) <= o.Ordinal {
				e.byIdx = append(e.byIdx, idxSet{})
			}
			installed := !e.byIdx[o.Ordinal].ok
			if installed {
				e.byIdx[o.Ordinal] = idxSet{set: o.Set.restore(), ok: true, disk: true}
			}
			e.mu.Unlock()
			if installed {
				m.admit(evictRef{entry: e, ordinal: o.Ordinal})
				n++
			}
		}
		for _, a := range ent.Args {
			e.mu.Lock()
			_, dup := e.sets[a.Key]
			if !dup {
				if e.sets == nil {
					e.sets = make(map[string]*strSet)
				}
				e.sets[a.Key] = &strSet{set: a.Set.restore(), disk: true}
			}
			e.mu.Unlock()
			if !dup {
				m.admit(evictRef{entry: e, key: a.Key, ordinal: -1})
				n++
			}
		}
	}
	return n
}

// memoSnapshotEqual reports whether two snapshots carry identical
// contents — the round-trip property the snapshot tests assert.
func memoSnapshotEqual(a, b *MemoSnapshot) bool {
	if len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Entries {
		ea, eb := &a.Entries[i], &b.Entries[i]
		if ea.FuncKey != eb.FuncKey || len(ea.Ordinals) != len(eb.Ordinals) || len(ea.Args) != len(eb.Args) {
			return false
		}
		for j := range ea.Ordinals {
			if ea.Ordinals[j].Ordinal != eb.Ordinals[j].Ordinal || !setSnapshotEqual(ea.Ordinals[j].Set, eb.Ordinals[j].Set) {
				return false
			}
		}
		for j := range ea.Args {
			if ea.Args[j].Key != eb.Args[j].Key || !setSnapshotEqual(ea.Args[j].Set, eb.Args[j].Set) {
				return false
			}
		}
	}
	return true
}

func setSnapshotEqual(a, b BehaviorSetSnapshot) bool {
	if a.UB != b.UB || a.Poison != b.Poison || a.Undef != b.Undef || a.Void != b.Void ||
		a.RetBits != b.RetBits || len(a.Rets) != len(b.Rets) {
		return false
	}
	for i := range a.Rets {
		if a.Rets[i] != b.Rets[i] {
			return false
		}
	}
	return true
}
