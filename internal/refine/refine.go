// Package refine is an Alive-style translation validator for the IR:
// it decides whether a transformed function refines the original one.
//
// Where Alive (Lopes et al., PLDI 2015) encodes the question for an SMT
// solver, this package exhaustively enumerates — all inputs over small
// bitwidths, and for each input all resolutions of the semantics'
// nondeterminism (undef reads, freeze choices, nondeterministic
// branches) via core.EnumOracle. At the scale of the paper's Section 6
// experiment ("all LLVM functions with three instructions over 2-bit
// integer arithmetic") enumeration is complete, so the verdicts are
// exact.
//
// The refinement order is the standard one:
//
//	UB  ⊒  poison  ⊒  undef  ⊒  any concrete value
//
// A target behaviour set refines a source behaviour set when the source
// admits UB, or when every target behaviour is covered by some source
// behaviour under that order (and the target has no UB of its own).
package refine

import (
	"fmt"
	"sort"
	"strings"

	"tameir/internal/core"
	_ "tameir/internal/core/bytecode" // link the bytecode tier backend
	"tameir/internal/ir"
	"tameir/internal/telemetry"
)

// BehaviorSet is the set of observable outcomes of one function on one
// input, over all resolutions of nondeterminism.
type BehaviorSet struct {
	// UB: some execution triggers immediate UB.
	UB bool
	// Poison: some execution returns poison (any lane).
	Poison bool
	// Undef: some execution returns a value with an undef lane.
	Undef bool
	// Rets: concrete return values (keyed by Value.Key()).
	Rets map[string]bool
	// Void: the function returned normally with no value.
	Void bool
	// Incomplete: enumeration hit a resource bound (fuel, choice
	// count, fanout); the set may be missing behaviours and any
	// verdict based on it is inconclusive.
	Incomplete bool
	// RetBits is the total bitwidth of the return type (0 for void or
	// very wide types); used to recognize when Rets covers the whole
	// domain, which makes the set equivalent to one containing undef.
	RetBits uint
}

// coversAllConcretes reports whether Rets contains every value of the
// return type.
func (b BehaviorSet) coversAllConcretes() bool {
	return b.RetBits > 0 && b.RetBits <= 20 && uint64(len(b.Rets)) == uint64(1)<<b.RetBits
}

// String summarizes the set for diagnostics.
func (b BehaviorSet) String() string {
	var parts []string
	if b.UB {
		parts = append(parts, "UB")
	}
	if b.Poison {
		parts = append(parts, "poison")
	}
	if b.Undef {
		parts = append(parts, "undef")
	}
	rets := make([]string, 0, len(b.Rets))
	for k := range b.Rets {
		rets = append(rets, k)
	}
	sort.Strings(rets)
	parts = append(parts, rets...)
	if b.Void {
		parts = append(parts, "ret void")
	}
	if b.Incomplete {
		parts = append(parts, "(incomplete)")
	}
	if len(parts) == 0 {
		return "{}"
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Config bounds the enumeration.
type Config struct {
	// SrcOpts / TgtOpts are the semantics each side runs under. They
	// usually coincide; they differ when validating a legacy→freeze
	// migration.
	SrcOpts core.Options
	TgtOpts core.Options

	// MaxChoices bounds oracle choice points per execution.
	MaxChoices int
	// MaxFanout bounds a single nondeterministic choice.
	MaxFanout uint64
	// MaxExecs bounds executions per (function, input).
	MaxExecs int
	// MaxInputs bounds the number of input tuples tried.
	MaxInputs int
	// Fuel bounds steps per execution (overrides the options' fuel).
	Fuel int

	// ExhaustiveInputBits is the widest integer parameter whose inputs
	// are enumerated exhaustively (0 means the default, 4). Raising it
	// lets wider-bitwidth campaigns (i8 parameters: 256 values + the
	// deferred-UB inputs) keep Exhaustive verdicts instead of degrading
	// to sampling; the input count grows as 2^bits per parameter, so
	// raise MaxInputs to match. Part of the memo key: behaviour-set
	// ordinals depend on the input enumeration this governs.
	ExhaustiveInputBits uint

	// Memo, when non-nil, caches behaviour sets by canonical
	// (function, semantics, input) key so structurally identical
	// candidates skip re-computation. A memo hit never changes a
	// verdict (keys are full canonical strings, not hashes). One Memo
	// may be shared by every worker of a campaign; each goroutine must
	// then also carry its own Session.
	Memo *Memo

	// Session is this goroutine's handle on Memo. Check creates a
	// private one when Memo is set and Session is nil, which is fine
	// for one-off checks; loops over many checks should create one
	// session per worker (Memo.NewSession) and reuse it, or the memo's
	// function-identity fast path never warms up.
	Session *MemoSession

	// Oracle, when non-nil, is reused across executions instead of
	// allocating a fresh enumeration oracle per behaviour set. It must
	// not be shared between goroutines.
	Oracle *core.EnumOracle

	// Interpret forces the legacy tree-walking interpreter instead of
	// the compiled engine. The two are behaviourally identical
	// (TestCompiledMatchesInterpreter); the switch exists for the
	// tame-bench twin-row comparison and as an escape hatch.
	Interpret bool

	// Tier selects the execution tier policy for the compiled engine
	// (ignored when Interpret is set). The zero value pins the closure
	// engine; DefaultConfig uses TierAuto so hot candidates promote to
	// the bytecode VM. All tiers are behaviourally identical
	// (TestCompiledMatchesInterpreter runs three-way lockstep), so the
	// policy never affects verdicts — only throughput.
	Tier core.TierPolicy

	// Programs, when non-nil, caches compiled programs across checks
	// keyed by (*ir.Func, Options). The cache trusts function pointers
	// (see core.ProgramCache's no-mutation contract): set it only when
	// checked functions are never mutated after first compilation.
	// When nil, Check still compiles each side exactly once per call.
	Programs *core.ProgramCache

	// ExecCount, when non-nil, is incremented by the number of
	// executions actually performed (memo hits contribute nothing).
	ExecCount *uint64

	// Metrics, when non-nil, accumulates validator counters (checks,
	// inputs, behaviour-set provenance and sizes, engine work). It is
	// owned by the calling goroutine: campaigns carry one per shard and
	// merge in shard order.
	Metrics *CheckMetrics

	// BehaviorHook, when non-nil, observes every behaviour set Check
	// consumes — computed or memo-hit — in deterministic order. Used by
	// tame-bench to fingerprint engine equivalence and by the mutation
	// fuzzer to derive coverage digests.
	BehaviorHook func(BehaviorSet)

	// Trace, when non-nil, records per-phase spans inside every Check:
	// "compile" around executor setup and "behaviors_src" /
	// "behaviors_tgt" around each input's behaviour-set derivation.
	// The spans cost a clock read per phase on the hot path, so
	// campaigns leave this nil unless -trace-phases is set. A traced
	// scope (Scope.WithTrace) additionally lands the spans in the
	// flight recorder and emits "tier_promote" instants when an
	// executor switches to the tier-2 runner.
	Trace *telemetry.Scope

	// CacheDir, when non-empty, names a directory of persistent cache
	// snapshots (internal/cache) for warm starts across processes.
	// Check itself never touches the directory — it is carried here so
	// drivers that receive a Config (campaigns, CLIs) agree on one
	// location; they open it via OpenDiskCache around their Memo's
	// lifetime. Snapshots are fingerprinted and rejected wholesale on
	// mismatch, so a warm start can never change a verdict.
	CacheDir string
}

// DefaultConfig is tuned for the Section 6 experiment: 2-bit
// arithmetic, up to a handful of instructions.
func DefaultConfig(srcOpts, tgtOpts core.Options) Config {
	return Config{
		SrcOpts:    srcOpts,
		TgtOpts:    tgtOpts,
		MaxChoices: 16,
		MaxFanout:  1 << 8,
		MaxExecs:   1 << 14,
		MaxInputs:  1 << 16,
		Fuel:       4096,
		Tier:       core.TierPolicy{Mode: core.TierAuto},
	}
}

// Behaviors computes the behaviour set of fn on args by exhaustive
// oracle enumeration, consulting cfg.Memo first when one is set. The
// function is compiled once (core.Compile) and the resulting program's
// frame and memory are reused across the whole sweep; set
// cfg.Interpret to force the legacy interpreter instead.
func Behaviors(fn *ir.Func, args []core.Value, opts core.Options, cfg Config) BehaviorSet {
	if cfg.Memo != nil && cfg.Session == nil {
		cfg.Session = cfg.Memo.NewSession()
	}
	var ex *core.Executor
	if !cfg.Interpret {
		ex = cfg.executor(fn, opts)
	}
	return behaviorsAt(fn, ex, args, -1, opts, cfg)
}

// executor compiles fn under opts (with cfg.Fuel applied, matching the
// override the enumeration loop applies on the interpreted path) and
// wraps the program in an Executor whose frame pool and memory are
// reused across every execution of the sweep.
func (cfg Config) executor(fn *ir.Func, opts core.Options) *core.Executor {
	if cfg.Fuel > 0 {
		opts.Fuel = cfg.Fuel
	}
	var p *core.Program
	if cfg.Programs != nil {
		p = cfg.Programs.Get(fn, opts)
	} else {
		p = core.Compile(fn, opts)
	}
	ex := core.NewExecutor(p)
	ex.SetTier(cfg.Tier)
	if cfg.Trace.Traced() {
		tr := cfg.Trace
		ex.Events = func(name string, args ...string) { tr.Instant(name, args...) }
	}
	return ex
}

// behaviorsAt is the enumeration core: it sweeps the oracle through
// every resolution of nondeterminism, executing on ex when non-nil and
// on the tree-walking interpreter otherwise. ordinal, when
// non-negative, is the input vector's position in Check's
// deterministic enumeration, unlocking the memo's string-free fast
// path; -1 means "unknown". Memo traffic goes through cfg.Session
// (the public entry points create one from cfg.Memo when needed).
func behaviorsAt(fn *ir.Func, ex *core.Executor, args []core.Value, ordinal int, opts core.Options, cfg Config) BehaviorSet {
	var memoRef memoRef
	if cfg.Session != nil {
		var set BehaviorSet
		var ok bool
		memoRef, set, ok = cfg.Session.lookup(fn, args, ordinal, opts, cfg)
		if ok {
			cfg.Metrics.observe(set, true, 0)
			if cfg.BehaviorHook != nil {
				cfg.BehaviorHook(set)
			}
			return set
		}
	}
	// Rets is allocated on the first concrete return value: many sweeps
	// (all-poison candidates, void functions, UB) never need it, and
	// the per-input map allocation is measurable on the §6 campaign.
	var set BehaviorSet
	if !fn.RetTy.IsVoid() && fn.RetTy.Bitwidth() <= 20 {
		set.RetBits = fn.RetTy.Bitwidth()
	}
	o := cfg.Oracle
	if o == nil {
		o = core.NewEnumOracle(cfg.MaxChoices, cfg.MaxFanout)
	} else {
		o.Clear(cfg.MaxChoices, cfg.MaxFanout)
	}
	if cfg.Fuel > 0 {
		opts.Fuel = cfg.Fuel
	}
	execs := 0
	// Concrete return values repeat heavily across an oracle sweep
	// (most functions have far fewer distinct results than executions),
	// and Value.Key() allocates a string every call. Dedupe through a
	// small linear-scan cache first so the Key()+map-insert cost is
	// paid once per distinct value, not once per execution.
	var seen [8]core.Value
	nseen := 0
	for {
		if execs >= cfg.MaxExecs {
			set.Incomplete = true
			break
		}
		execs++
		o.Reset()
		var out core.Outcome
		if ex != nil {
			out = ex.Run(args, o)
		} else {
			out = core.Interpret(fn, args, o, opts)
		}
		switch out.Kind {
		case core.OutUB:
			set.UB = true
		case core.OutTimeout:
			set.Incomplete = true
		case core.OutError:
			// Malformed IR is a harness bug; surface loudly.
			panic(fmt.Sprintf("refine: execution error on @%s: %s", fn.Name(), out.Msg))
		case core.OutRet:
			switch {
			case out.Val.Ty.IsVoid():
				set.Void = true
			case out.Val.AnyPoison():
				set.Poison = true
			case !out.Val.IsConcrete():
				set.Undef = true
			default:
				dup := false
				for i := 0; i < nseen; i++ {
					if seen[i].Equal(out.Val) {
						dup = true
						break
					}
				}
				if !dup {
					if nseen < len(seen) {
						seen[nseen] = out.Val
						nseen++
					}
					if set.Rets == nil {
						set.Rets = make(map[string]bool, 4)
					}
					set.Rets[out.Val.Key()] = true
				}
			}
		}
		if !o.Next() {
			break
		}
	}
	if o.Overflowed {
		set.Incomplete = true
	}
	if cfg.ExecCount != nil {
		*cfg.ExecCount += uint64(execs)
	}
	cfg.Metrics.observe(set, false, uint64(execs))
	if cfg.Session != nil {
		cfg.Session.store(memoRef, set)
	}
	if cfg.BehaviorHook != nil {
		cfg.BehaviorHook(set)
	}
	return set
}

// Refines reports whether behaviour set tgt refines src, with a reason
// when it does not. Incomplete sets yield (false, "inconclusive: ...").
func Refines(src, tgt BehaviorSet) (bool, string) {
	if src.UB {
		return true, "" // source UB justifies anything
	}
	if src.Incomplete || tgt.Incomplete {
		return false, "inconclusive: behaviour enumeration incomplete"
	}
	if tgt.UB {
		return false, "target has UB, source does not"
	}
	if tgt.Poison && !src.Poison {
		return false, "target returns poison, source cannot"
	}
	if tgt.Undef && !src.Poison && !src.Undef && !src.coversAllConcretes() {
		return false, "target returns undef, source returns neither undef nor poison"
	}
	if src.Poison || src.Undef {
		return true, "" // deferred UB in source covers every concrete value
	}
	// Report the smallest missing value so the counterexample is
	// deterministic (map iteration order is not).
	missing := ""
	for r := range tgt.Rets {
		if !src.Rets[r] && (missing == "" || r < missing) {
			missing = r
		}
	}
	if missing != "" {
		return false, fmt.Sprintf("target can return %s, source cannot", missing)
	}
	if tgt.Void && !src.Void {
		return false, "target returns void, source never returns"
	}
	return true, ""
}

// Status is the verdict of a refinement check.
type Status uint8

const (
	// Verified: the target refines the source on every input tried.
	Verified Status = iota
	// Refuted: a counterexample input was found.
	Refuted
	// Inconclusive: no counterexample, but some inputs could not be
	// fully enumerated (or the input space was sampled, not covered).
	Inconclusive
)

// String returns the verdict name.
func (s Status) String() string {
	switch s {
	case Verified:
		return "verified"
	case Refuted:
		return "refuted"
	}
	return "inconclusive"
}

// CounterExample records a refinement violation.
type CounterExample struct {
	Args   []core.Value
	Src    BehaviorSet
	Tgt    BehaviorSet
	Reason string
}

// String formats the counterexample.
func (c *CounterExample) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("args(%s): src=%s tgt=%s: %s",
		strings.Join(args, ", "), c.Src, c.Tgt, c.Reason)
}

// Result is the outcome of Check.
type Result struct {
	Status Status
	// Exhaustive: the input space was fully covered (all parameter
	// types were exhaustively enumerable).
	Exhaustive bool
	// Inputs is the number of input tuples checked.
	Inputs int
	// InconclusiveInputs counts inputs whose behaviour sets were
	// incomplete.
	InconclusiveInputs int
	// CE is the first counterexample found (Status == Refuted).
	CE *CounterExample
}

// String summarizes the result.
func (r Result) String() string {
	s := r.Status.String()
	if r.Status == Verified && r.Exhaustive {
		s += " (exhaustive)"
	}
	s += fmt.Sprintf(", %d inputs", r.Inputs)
	if r.InconclusiveInputs > 0 {
		s += fmt.Sprintf(" (%d inconclusive)", r.InconclusiveInputs)
	}
	if r.CE != nil {
		s += ": " + r.CE.String()
	}
	return s
}

// Check decides whether tgt refines src. The functions must have
// matching signatures. Inputs are enumerated exhaustively for small
// types (including poison, and undef under legacy source semantics);
// wider types are sampled and the verdict degrades to Inconclusive if
// no counterexample appears.
//
// Each side is compiled exactly once (or fetched from cfg.Programs)
// and executed through a pooled frame across the entire input×oracle
// sweep, so the per-execution cost is dispatch, not setup.
func Check(src, tgt *ir.Func, cfg Config) Result {
	if len(src.Params) != len(tgt.Params) {
		panic("refine: signature mismatch")
	}
	for i := range src.Params {
		if !src.Params[i].Ty.Equal(tgt.Params[i].Ty) {
			panic("refine: parameter type mismatch")
		}
	}
	if cfg.Memo != nil && cfg.Session == nil {
		cfg.Session = cfg.Memo.NewSession()
	}
	var srcEx, tgtEx *core.Executor
	if !cfg.Interpret {
		sp := cfg.Trace.Start("compile")
		srcEx = cfg.executor(src, cfg.SrcOpts)
		tgtEx = cfg.executor(tgt, cfg.TgtOpts)
		sp.End()
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Checks++
		if !cfg.Interpret {
			// Executors accumulate engine counters across the whole
			// sweep; fold them in however Check exits.
			defer func() {
				cfg.Metrics.Engine.Add(*srcEx.Metrics())
				cfg.Metrics.Engine.Add(*tgtEx.Metrics())
			}()
		}
	}
	exhaustive := true
	cands := make([][]core.Value, len(src.Params))
	for i, p := range src.Params {
		var ex bool
		cands[i], ex = candidateValuesBits(p.Ty, cfg.SrcOpts.Mode, cfg.ExhaustiveInputBits)
		exhaustive = exhaustive && ex
	}

	res := Result{Exhaustive: exhaustive}
	idx := make([]int, len(cands))
	for {
		args := make([]core.Value, len(cands))
		for i, j := range idx {
			args[i] = cands[i][j]
		}
		res.Inputs++
		if cfg.Metrics != nil {
			cfg.Metrics.Inputs++
		}
		if res.Inputs > cfg.MaxInputs {
			res.Exhaustive = false
			break
		}
		sp := cfg.Trace.Start("behaviors_src")
		sb := behaviorsAt(src, srcEx, args, res.Inputs-1, cfg.SrcOpts, cfg)
		sp.End()
		sp = cfg.Trace.Start("behaviors_tgt")
		tb := behaviorsAt(tgt, tgtEx, args, res.Inputs-1, cfg.TgtOpts, cfg)
		sp.End()
		ok, reason := Refines(sb, tb)
		if !ok {
			if strings.HasPrefix(reason, "inconclusive") {
				res.InconclusiveInputs++
			} else {
				res.Status = Refuted
				res.CE = &CounterExample{Args: args, Src: sb, Tgt: tb, Reason: reason}
				return res
			}
		}
		// Advance the input odometer.
		k := len(idx) - 1
		for ; k >= 0; k-- {
			idx[k]++
			if idx[k] < len(cands[k]) {
				break
			}
			idx[k] = 0
		}
		if k < 0 {
			break
		}
	}
	if res.InconclusiveInputs > 0 || !res.Exhaustive {
		res.Status = Inconclusive
	} else {
		res.Status = Verified
	}
	return res
}

// CandidateValues returns the input values to try for a parameter of
// type ty, and whether they cover the type exhaustively. Deferred-UB
// inputs are included: poison always, undef under legacy semantics.
// Integers up to the default exhaustive width (4 bits) are fully
// enumerated; Config.ExhaustiveInputBits widens that cutoff.
func CandidateValues(ty ir.Type, mode core.Mode) ([]core.Value, bool) {
	return candidateValuesBits(ty, mode, 0)
}

func candidateValuesBits(ty ir.Type, mode core.Mode, bits uint) ([]core.Value, bool) {
	if bits == 0 {
		bits = 4
	}
	addDeferred := func(vs []core.Value) []core.Value {
		vs = append(vs, core.VPoison(ty))
		if mode == core.Legacy {
			vs = append(vs, core.VUndef(ty))
		}
		return vs
	}
	switch {
	case ty.IsInt() && ty.Bits <= bits:
		var vs []core.Value
		for v := uint64(0); v < 1<<ty.Bits; v++ {
			vs = append(vs, core.VC(ty, v))
		}
		return addDeferred(vs), true
	case ty.IsInt():
		// Sample the interesting corners.
		w := ty.Bits
		samples := []uint64{0, 1, 2, 3, ir.TruncBits(^uint64(0), w), 1 << (w - 1), 1<<(w-1) - 1, 5, 10, 100}
		seen := map[uint64]bool{}
		var vs []core.Value
		for _, s := range samples {
			s = ir.TruncBits(s, w)
			if !seen[s] {
				seen[s] = true
				vs = append(vs, core.VC(ty, s))
			}
		}
		return addDeferred(vs), false
	case ty.IsPtr():
		// Null and poison. Valid pointers require a memory harness the
		// caller sets up (see CheckWithPointers-style helpers in the
		// pass tests); enumeration here stays conservative.
		return addDeferred([]core.Value{core.VC(ty, 0)}), false
	case ty.IsVec() && ty.ElemType().IsInt() && ty.ElemType().Bits*ty.Len <= 6:
		lane, _ := CandidateValues(ty.ElemType(), mode)
		// Cartesian product over lanes.
		var vs []core.Value
		idx := make([]int, ty.Len)
		for {
			v := core.Value{Ty: ty, Lanes: make([]core.Scalar, ty.Len)}
			for i, j := range idx {
				v.Lanes[i] = lane[j].Lanes[0]
			}
			vs = append(vs, v)
			k := len(idx) - 1
			for ; k >= 0; k-- {
				idx[k]++
				if idx[k] < len(lane) {
					break
				}
				idx[k] = 0
			}
			if k < 0 {
				break
			}
		}
		return vs, true
	case ty.IsVec():
		zero := core.Value{Ty: ty, Lanes: make([]core.Scalar, ty.Len)}
		for i := range zero.Lanes {
			zero.Lanes[i] = core.C(0)
		}
		return addDeferred([]core.Value{zero}), false
	}
	panic("refine: no candidates for type " + ty.String())
}
