package refine

import (
	"fmt"
	"reflect"
	"testing"

	"tameir/internal/core"
	"tameir/internal/ir"
)

var memoPairs = []struct {
	src, tgt   string
	legacyOnly bool // uses undef, which the freeze dialect rejects
}{
	// Valid nsw comparison transform (§2.4).
	{src: `define i1 @f(i2 %a, i2 %b) {
entry:
  %add = add nsw i2 %a, %b
  %cmp = icmp sgt i2 %add, %a
  ret i1 %cmp
}`, tgt: `define i1 @f(i2 %a, i2 %b) {
entry:
  %cmp = icmp sgt i2 %b, 0
  ret i1 %cmp
}`},
	// Invalid wrapping variant of the same transform.
	{src: `define i1 @f(i2 %a, i2 %b) {
entry:
  %add = add i2 %a, %b
  %cmp = icmp sgt i2 %add, %a
  ret i1 %cmp
}`, tgt: `define i1 @f(i2 %a, i2 %b) {
entry:
  %cmp = icmp sgt i2 %b, 0
  ret i1 %cmp
}`},
	// Identity on a nondeterminism-heavy function: same src behaviour
	// sets get looked up by both sides.
	{src: `define i2 @g(i2 %a) {
entry:
  %x = freeze i2 %a
  %y = xor i2 %x, %a
  ret i2 %y
}`, tgt: `define i2 @g(i2 %a) {
entry:
  %x = freeze i2 %a
  %y = xor i2 %x, %a
  ret i2 %y
}`},
	// Refinement with undef in the source.
	{src: `define i2 @h(i2 %a) {
entry:
  %x = or i2 %a, undef
  ret i2 %x
}`, tgt: `define i2 @h(i2 %a) {
entry:
  ret i2 %a
}`, legacyOnly: true},
}

// TestMemoNeverChangesVerdict runs every pair twice per semantics —
// cold and against a warm shared memo — and requires identical
// Results. Memo keys are full canonical strings, so this holds by
// construction; the test guards the construction.
func TestMemoNeverChangesVerdict(t *testing.T) {
	for _, opts := range []core.Options{
		core.FreezeOptions(),
		core.LegacyOptions(core.BranchPoisonNondet),
	} {
		memo := NewMemo(0)
		for round := 0; round < 2; round++ {
			for i, p := range memoPairs {
				if p.legacyOnly && opts.Mode == core.Freeze {
					continue
				}
				src := ir.MustParseFunc(p.src)
				tgt := ir.MustParseFunc(p.tgt)
				cfg := DefaultConfig(opts, opts)

				plain := Check(src, tgt, cfg)
				cfg.Memo = memo
				memoized := Check(src, tgt, cfg)
				if !reflect.DeepEqual(plain, memoized) {
					t.Errorf("mode=%v pair=%d round=%d: memo changed verdict:\nplain:    %s\nmemoized: %s",
						opts.Mode, i, round, plain, memoized)
				}
			}
		}
		if memo.Hits() == 0 {
			t.Errorf("mode=%v: warm rounds produced no memo hits", opts.Mode)
		}
	}
}

// TestMemoHitsOnRepeatedCheck: a second identical Check must be
// answered entirely from the cache.
func TestMemoHitsOnRepeatedCheck(t *testing.T) {
	src := ir.MustParseFunc(memoPairs[0].src)
	tgt := ir.MustParseFunc(memoPairs[0].tgt)
	cfg := DefaultConfig(core.FreezeOptions(), core.FreezeOptions())
	cfg.Memo = NewMemo(0)

	Check(src, tgt, cfg)
	cold := cfg.Memo.Lookups()
	if cold == 0 {
		t.Fatal("no memo lookups on first Check")
	}
	hitsBefore := cfg.Memo.Hits()

	Check(src, tgt, cfg)
	if got := cfg.Memo.Hits() - hitsBefore; got != cold {
		t.Errorf("second Check: %d hits, want all %d lookups to hit", got, cold)
	}
}

// TestMemoEvictsWhenFull: a full memo admits new sets by evicting cold
// ones instead of refusing them.
func TestMemoEvictsWhenFull(t *testing.T) {
	m := NewMemo(1)
	s := m.NewSession()
	fn := ir.MustParseFunc(memoPairs[2].src)
	opts := core.FreezeOptions()
	cfg := DefaultConfig(opts, opts)

	a := []core.Value{core.VC(ir.Int(2), 0)}
	b := []core.Value{core.VC(ir.Int(2), 1)}
	refA, _, _ := s.lookup(fn, a, -1, opts, cfg)
	s.store(refA, BehaviorSet{})
	refB, _, _ := s.lookup(fn, b, -1, opts, cfg)
	s.store(refB, BehaviorSet{})
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (capacity)", m.Len())
	}
	if m.Evictions() != 1 {
		t.Errorf("Evictions = %d, want 1", m.Evictions())
	}
	if _, _, ok := s.lookup(fn, a, -1, opts, cfg); ok {
		t.Error("cold entry survived eviction")
	}
	if _, _, ok := s.lookup(fn, b, -1, opts, cfg); !ok {
		t.Error("newly admitted entry missing")
	}
}

// TestMemoSecondChance: the clock spares recently hit sets and evicts
// cold ones.
func TestMemoSecondChance(t *testing.T) {
	m := NewMemo(2)
	s := m.NewSession()
	fn := ir.MustParseFunc(memoPairs[2].src)
	opts := core.FreezeOptions()
	cfg := DefaultConfig(opts, opts)

	vals := [][]core.Value{
		{core.VC(ir.Int(2), 0)},
		{core.VC(ir.Int(2), 1)},
		{core.VC(ir.Int(2), 2)},
	}
	for _, v := range vals[:2] {
		ref, _, _ := s.lookup(fn, v, -1, opts, cfg)
		s.store(ref, BehaviorSet{})
	}
	// Touch the first set so its reference bit protects it.
	if _, _, ok := s.lookup(fn, vals[0], -1, opts, cfg); !ok {
		t.Fatal("warm entry missing before eviction")
	}
	ref, _, _ := s.lookup(fn, vals[2], -1, opts, cfg)
	s.store(ref, BehaviorSet{})

	if _, _, ok := s.lookup(fn, vals[0], -1, opts, cfg); !ok {
		t.Error("recently hit set was evicted despite its second chance")
	}
	if _, _, ok := s.lookup(fn, vals[1], -1, opts, cfg); ok {
		t.Error("cold set survived; clock should have chosen it as victim")
	}
}

// TestMemoSkipsIncomplete: incomplete behaviour sets depend on the
// enumeration bounds and must never be cached.
func TestMemoSkipsIncomplete(t *testing.T) {
	m := NewMemo(0)
	s := m.NewSession()
	fn := ir.MustParseFunc(memoPairs[2].src)
	opts := core.FreezeOptions()
	cfg := DefaultConfig(opts, opts)
	ref, _, _ := s.lookup(fn, nil, -1, opts, cfg)
	s.store(ref, BehaviorSet{Incomplete: true})
	if m.Len() != 0 {
		t.Error("incomplete set was cached")
	}
}

// TestMemoEvictionKeepsVerdicts squeezes every pair through a memo so
// small that eviction churns constantly, and requires the verdicts to
// match memo-less runs exactly. An eviction may cost a recomputation;
// it must never change a Result.
func TestMemoEvictionKeepsVerdicts(t *testing.T) {
	for _, opts := range []core.Options{
		core.FreezeOptions(),
		core.LegacyOptions(core.BranchPoisonNondet),
	} {
		memo := NewMemo(4)
		for round := 0; round < 2; round++ {
			for i, p := range memoPairs {
				if p.legacyOnly && opts.Mode == core.Freeze {
					continue
				}
				src := ir.MustParseFunc(p.src)
				tgt := ir.MustParseFunc(p.tgt)
				cfg := DefaultConfig(opts, opts)

				plain := Check(src, tgt, cfg)
				cfg.Memo = memo
				memoized := Check(src, tgt, cfg)
				if !reflect.DeepEqual(plain, memoized) {
					t.Errorf("mode=%v pair=%d round=%d: eviction changed verdict:\nplain:    %s\nmemoized: %s",
						opts.Mode, i, round, plain, memoized)
				}
			}
		}
		if memo.Evictions() == 0 {
			t.Errorf("mode=%v: memo of size 4 saw no evictions; test is not exercising the clock", opts.Mode)
		}
		if got := memo.Len(); got > 4 {
			t.Errorf("mode=%v: Len = %d exceeds capacity 4", opts.Mode, got)
		}
	}
}

// TestMemoConcurrentSessions shares one memo across goroutines that
// each check every pair, then requires the verdicts to match a serial
// memo-less run. Run under -race this also exercises the shard and
// ring locking.
func TestMemoConcurrentSessions(t *testing.T) {
	opts := core.LegacyOptions(core.BranchPoisonNondet)
	want := make([]Result, len(memoPairs))
	for i, p := range memoPairs {
		cfg := DefaultConfig(opts, opts)
		want[i] = Check(ir.MustParseFunc(p.src), ir.MustParseFunc(p.tgt), cfg)
	}

	memo := NewMemo(64) // small enough that workers also race evictions
	const workers = 8
	errs := make(chan string, workers*len(memoPairs))
	done := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			cfg := DefaultConfig(opts, opts)
			cfg.Memo = memo
			cfg.Session = memo.NewSession()
			for i, p := range memoPairs {
				got := Check(ir.MustParseFunc(p.src), ir.MustParseFunc(p.tgt), cfg)
				if !reflect.DeepEqual(got, want[i]) {
					errs <- fmt.Sprintf("pair %d: concurrent verdict %s, want %s", i, got, want[i])
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if memo.Hits() == 0 {
		t.Error("concurrent sessions produced no cross-session hits")
	}
}
