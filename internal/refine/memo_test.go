package refine

import (
	"reflect"
	"testing"

	"tameir/internal/core"
	"tameir/internal/ir"
)

var memoPairs = []struct {
	src, tgt   string
	legacyOnly bool // uses undef, which the freeze dialect rejects
}{
	// Valid nsw comparison transform (§2.4).
	{src: `define i1 @f(i2 %a, i2 %b) {
entry:
  %add = add nsw i2 %a, %b
  %cmp = icmp sgt i2 %add, %a
  ret i1 %cmp
}`, tgt: `define i1 @f(i2 %a, i2 %b) {
entry:
  %cmp = icmp sgt i2 %b, 0
  ret i1 %cmp
}`},
	// Invalid wrapping variant of the same transform.
	{src: `define i1 @f(i2 %a, i2 %b) {
entry:
  %add = add i2 %a, %b
  %cmp = icmp sgt i2 %add, %a
  ret i1 %cmp
}`, tgt: `define i1 @f(i2 %a, i2 %b) {
entry:
  %cmp = icmp sgt i2 %b, 0
  ret i1 %cmp
}`},
	// Identity on a nondeterminism-heavy function: same src behaviour
	// sets get looked up by both sides.
	{src: `define i2 @g(i2 %a) {
entry:
  %x = freeze i2 %a
  %y = xor i2 %x, %a
  ret i2 %y
}`, tgt: `define i2 @g(i2 %a) {
entry:
  %x = freeze i2 %a
  %y = xor i2 %x, %a
  ret i2 %y
}`},
	// Refinement with undef in the source.
	{src: `define i2 @h(i2 %a) {
entry:
  %x = or i2 %a, undef
  ret i2 %x
}`, tgt: `define i2 @h(i2 %a) {
entry:
  ret i2 %a
}`, legacyOnly: true},
}

// TestMemoNeverChangesVerdict runs every pair twice per semantics —
// cold and against a warm shared memo — and requires identical
// Results. Memo keys are full canonical strings, so this holds by
// construction; the test guards the construction.
func TestMemoNeverChangesVerdict(t *testing.T) {
	for _, opts := range []core.Options{
		core.FreezeOptions(),
		core.LegacyOptions(core.BranchPoisonNondet),
	} {
		memo := NewMemo(0)
		for round := 0; round < 2; round++ {
			for i, p := range memoPairs {
				if p.legacyOnly && opts.Mode == core.Freeze {
					continue
				}
				src := ir.MustParseFunc(p.src)
				tgt := ir.MustParseFunc(p.tgt)
				cfg := DefaultConfig(opts, opts)

				plain := Check(src, tgt, cfg)
				cfg.Memo = memo
				memoized := Check(src, tgt, cfg)
				if !reflect.DeepEqual(plain, memoized) {
					t.Errorf("mode=%v pair=%d round=%d: memo changed verdict:\nplain:    %s\nmemoized: %s",
						opts.Mode, i, round, plain, memoized)
				}
			}
		}
		if memo.Hits() == 0 {
			t.Errorf("mode=%v: warm rounds produced no memo hits", opts.Mode)
		}
	}
}

// TestMemoHitsOnRepeatedCheck: a second identical Check must be
// answered entirely from the cache.
func TestMemoHitsOnRepeatedCheck(t *testing.T) {
	src := ir.MustParseFunc(memoPairs[0].src)
	tgt := ir.MustParseFunc(memoPairs[0].tgt)
	cfg := DefaultConfig(core.FreezeOptions(), core.FreezeOptions())
	cfg.Memo = NewMemo(0)

	Check(src, tgt, cfg)
	cold := cfg.Memo.Lookups()
	if cold == 0 {
		t.Fatal("no memo lookups on first Check")
	}
	hitsBefore := cfg.Memo.Hits()

	Check(src, tgt, cfg)
	if got := cfg.Memo.Hits() - hitsBefore; got != cold {
		t.Errorf("second Check: %d hits, want all %d lookups to hit", got, cold)
	}
}

// TestMemoCapacity: a full memo stops admitting but keeps serving.
func TestMemoCapacity(t *testing.T) {
	m := NewMemo(1)
	fn := ir.MustParseFunc(memoPairs[2].src)
	opts := core.FreezeOptions()
	cfg := DefaultConfig(opts, opts)

	a := []core.Value{core.VC(ir.Int(2), 0)}
	b := []core.Value{core.VC(ir.Int(2), 1)}
	refA, _, _ := m.lookup(fn, a, -1, opts, cfg)
	m.store(refA, BehaviorSet{})
	refB, _, _ := m.lookup(fn, b, -1, opts, cfg)
	m.store(refB, BehaviorSet{})
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (capacity)", m.Len())
	}
	if _, _, ok := m.lookup(fn, a, -1, opts, cfg); !ok {
		t.Error("entry evicted from full memo")
	}
	if _, _, ok := m.lookup(fn, b, -1, opts, cfg); ok {
		t.Error("over-capacity entry admitted")
	}
}

// TestMemoSkipsIncomplete: incomplete behaviour sets depend on the
// enumeration bounds and must never be cached.
func TestMemoSkipsIncomplete(t *testing.T) {
	m := NewMemo(0)
	fn := ir.MustParseFunc(memoPairs[2].src)
	opts := core.FreezeOptions()
	cfg := DefaultConfig(opts, opts)
	ref, _, _ := m.lookup(fn, nil, -1, opts, cfg)
	m.store(ref, BehaviorSet{Incomplete: true})
	if m.Len() != 0 {
		t.Error("incomplete set was cached")
	}
}
