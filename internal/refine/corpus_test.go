package refine

import (
	"testing"

	"tameir/internal/core"
	"tameir/internal/ir"
)

// corpusCase is one transformation in the Alive-style corpus: source,
// target, the semantics to judge under, and the expected verdict.
// The corpus collects the paper's examples plus classic
// InstCombine-style rewrites, so that any semantics regression in core
// or refine trips dozens of independent checks.
type corpusCase struct {
	name string
	sem  string // "freeze", "legacy-ub", "legacy-nondet"
	src  string
	tgt  string
	want Status
}

func semOptions(s string) core.Options {
	switch s {
	case "freeze":
		return core.FreezeOptions()
	case "legacy-ub":
		return core.LegacyOptions(core.BranchPoisonIsUB)
	case "legacy-nondet":
		return core.LegacyOptions(core.BranchPoisonNondet)
	}
	panic("bad semantics " + s)
}

var corpus = []corpusCase{
	// --- arithmetic identities (sound everywhere) ---
	{
		name: "add-commute", sem: "freeze", want: Verified,
		src: `define i3 @f(i3 %a, i3 %b) {
entry:
  %r = add i3 %a, %b
  ret i3 %r
}`,
		tgt: `define i3 @f(i3 %a, i3 %b) {
entry:
  %r = add i3 %b, %a
  ret i3 %r
}`,
	},
	{
		name: "sub-to-add-neg", sem: "freeze", want: Verified,
		src: `define i3 @f(i3 %a, i3 %b) {
entry:
  %r = sub i3 %a, %b
  ret i3 %r
}`,
		tgt: `define i3 @f(i3 %a, i3 %b) {
entry:
  %n = sub i3 0, %b
  %r = add i3 %a, %n
  ret i3 %r
}`,
	},
	{
		name: "shl-to-mul", sem: "freeze", want: Verified,
		src: `define i3 @f(i3 %a) {
entry:
  %r = shl i3 %a, 1
  ret i3 %r
}`,
		tgt: `define i3 @f(i3 %a) {
entry:
  %r = mul i3 %a, 2
  ret i3 %r
}`,
	},
	{
		name: "neg-neg", sem: "legacy-nondet", want: Verified,
		src: `define i3 @f(i3 %a) {
entry:
  %n = sub i3 0, %a
  %r = sub i3 0, %n
  ret i3 %r
}`,
		tgt: `define i3 @f(i3 %a) {
entry:
  ret i3 %a
}`,
	},
	{
		name: "xor-cancel", sem: "freeze", want: Verified,
		src: `define i3 @f(i3 %a, i3 %b) {
entry:
  %x = xor i3 %a, %b
  %r = xor i3 %x, %b
  ret i3 %r
}`,
		tgt: `define i3 @f(i3 %a, i3 %b) {
entry:
  ret i3 %a
}`,
	},
	{
		name: "icmp-ult-1-is-eq-0", sem: "freeze", want: Verified,
		src: `define i1 @f(i3 %a) {
entry:
  %r = icmp ult i3 %a, 1
  ret i1 %r
}`,
		tgt: `define i1 @f(i3 %a) {
entry:
  %r = icmp eq i3 %a, 0
  ret i1 %r
}`,
	},
	{
		name: "demorgan", sem: "freeze", want: Verified,
		src: `define i2 @f(i2 %a, i2 %b) {
entry:
  %x = and i2 %a, %b
  %r = xor i2 %x, -1
  ret i2 %r
}`,
		tgt: `define i2 @f(i2 %a, i2 %b) {
entry:
  %na = xor i2 %a, -1
  %nb = xor i2 %b, -1
  %r = or i2 %na, %nb
  ret i2 %r
}`,
	},

	// --- attribute handling ---
	{
		name: "drop-nuw", sem: "freeze", want: Verified,
		src: `define i2 @f(i2 %a) {
entry:
  %r = add nuw i2 %a, 1
  ret i2 %r
}`,
		tgt: `define i2 @f(i2 %a) {
entry:
  %r = add i2 %a, 1
  ret i2 %r
}`,
	},
	{
		name: "introduce-nuw", sem: "freeze", want: Refuted,
		src: `define i2 @f(i2 %a) {
entry:
  %r = add i2 %a, 1
  ret i2 %r
}`,
		tgt: `define i2 @f(i2 %a) {
entry:
  %r = add nuw i2 %a, 1
  ret i2 %r
}`,
	},
	{
		name: "exact-udiv-roundtrip", sem: "freeze", want: Verified,
		// (a exact/ 2) * 2 == a when the division is exact; poison
		// otherwise on both sides? Source: mul(udiv exact a,2, 2):
		// division inexact → poison → mul poison. Target a... NOT a
		// refinement in that direction; check the sound direction:
		// replacing the round trip with a is only sound when... it is
		// NOT; expect the checker to verify the reverse: a → roundtrip
		// is refuted too. Keep the trivially-true self pair with exact
		// to pin exact's semantics.
		src: `define i2 @f(i2 %a) {
entry:
  %d = udiv exact i2 %a, 2
  ret i2 %d
}`,
		tgt: `define i2 @f(i2 %a) {
entry:
  %d = udiv exact i2 %a, 2
  ret i2 %d
}`,
	},
	{
		name: "exact-roundtrip-to-identity", sem: "freeze", want: Refuted,
		// mul (udiv exact %a, 2), 2 → %a is WRONG: for odd a the
		// source is poison·2 = poison... poison ⊒ a, so that direction
		// refines! The refuted direction: %a → the round trip (adds
		// poison).
		src: `define i2 @f(i2 %a) {
entry:
  ret i2 %a
}`,
		tgt: `define i2 @f(i2 %a) {
entry:
  %d = udiv exact i2 %a, 2
  %r = mul i2 %d, 2
  ret i2 %r
}`,
	},

	// --- freeze algebra ---
	{
		name: "freeze-of-freeze", sem: "freeze", want: Verified,
		src: `define i2 @f(i2 %a) {
entry:
  %x = freeze i2 %a
  %y = freeze i2 %x
  ret i2 %y
}`,
		tgt: `define i2 @f(i2 %a) {
entry:
  %x = freeze i2 %a
  ret i2 %x
}`,
	},
	{
		name: "freeze-pushes-through-add-of-const", sem: "freeze", want: Verified,
		// freeze(add x, 1) → add(freeze x), 1: sound — LLVM does this
		// to shorten poison chains (and it is exactly CodeGenPrepare's
		// icmp rewrite shape).
		src: `define i2 @f(i2 %a) {
entry:
  %s = add i2 %a, 1
  %r = freeze i2 %s
  ret i2 %r
}`,
		tgt: `define i2 @f(i2 %a) {
entry:
  %fa = freeze i2 %a
  %r = add i2 %fa, 1
  ret i2 %r
}`,
	},
	{
		name: "freeze-pull-OUT-of-nsw-add-unsound", sem: "freeze", want: Refuted,
		// The other direction with a poison-GENERATING op is wrong:
		// add nsw (freeze x), 1 is poison only on real overflow, while
		// freeze(add nsw x, 1) is never poison.
		src: `define i2 @f(i2 %a) {
entry:
  %s = add nsw i2 %a, 1
  %r = freeze i2 %s
  ret i2 %r
}`,
		tgt: `define i2 @f(i2 %a) {
entry:
  %fa = freeze i2 %a
  %r = add nsw i2 %fa, 1
  ret i2 %r
}`,
	},
	{
		name: "freeze-not-idempotent-across-uses", sem: "freeze", want: Refuted,
		// Replacing two freezes of the same value with one changes
		// nothing... in the OTHER direction: one freeze split into two
		// grows the behaviour set.
		src: `define i2 @f(i2 %a) {
entry:
  %x = freeze i2 %a
  %r = xor i2 %x, %x
  ret i2 %r
}`,
		tgt: `define i2 @f(i2 %a) {
entry:
  %x = freeze i2 %a
  %y = freeze i2 %a
  %r = xor i2 %x, %y
  ret i2 %r
}`,
	},

	// --- select / branch corner (§3.4) ---
	{
		name: "select-same-arms", sem: "freeze", want: Verified,
		src: `define i2 @f(i1 %c, i2 %a) {
entry:
  %r = select i1 %c, i2 %a, i2 %a
  ret i2 %r
}`,
		tgt: `define i2 @f(i1 %c, i2 %a) {
entry:
  ret i2 %a
}`,
	},
	{
		name: "select-const-fold-cond", sem: "freeze", want: Verified,
		src: `define i2 @f(i2 %a, i2 %b) {
entry:
  %r = select i1 true, i2 %a, i2 %b
  ret i2 %r
}`,
		tgt: `define i2 @f(i2 %a, i2 %b) {
entry:
  ret i2 %a
}`,
	},
	{
		name: "select-to-and-unsound", sem: "freeze", want: Refuted,
		src: `define i1 @f(i1 %c, i1 %x) {
entry:
  %r = select i1 %c, i1 %x, i1 false
  ret i1 %r
}`,
		tgt: `define i1 @f(i1 %c, i1 %x) {
entry:
  %r = and i1 %c, %x
  ret i1 %r
}`,
	},
	{
		name: "select-to-and-frozen-sound", sem: "freeze", want: Verified,
		src: `define i1 @f(i1 %c, i1 %x) {
entry:
  %r = select i1 %c, i1 %x, i1 false
  ret i1 %r
}`,
		tgt: `define i1 @f(i1 %c, i1 %x) {
entry:
  %fx = freeze i1 %x
  %r = and i1 %c, %fx
  ret i1 %r
}`,
	},

	// --- undef-specific lore (legacy semantics) ---
	{
		name: "undef-xor-self-not-zero", sem: "legacy-nondet", want: Refuted,
		// xor undef, undef is NOT 0 in the other direction: replacing
		// 0 with it grows the set.
		src: `define i2 @f() {
entry:
  ret i2 0
}`,
		tgt: `define i2 @f() {
entry:
  %r = xor i2 undef, undef
  ret i2 %r
}`,
	},
	{
		name: "undef-and-x-to-zero", sem: "legacy-nondet", want: Verified,
		src: `define i2 @f(i2 %x) {
entry:
  %r = and i2 %x, undef
  ret i2 %r
}`,
		tgt: `define i2 @f(i2 %x) {
entry:
  ret i2 0
}`,
	},
	{
		name: "undef-or-x-to-allones", sem: "legacy-nondet", want: Verified,
		src: `define i2 @f(i2 %x) {
entry:
  %r = or i2 %x, undef
  ret i2 %r
}`,
		tgt: `define i2 @f(i2 %x) {
entry:
  ret i2 -1
}`,
	},
	{
		name: "undef-plus-x-to-undef", sem: "legacy-nondet", want: Verified,
		src: `define i2 @f(i2 %x) {
entry:
  %r = add i2 %x, undef
  ret i2 %r
}`,
		tgt: `define i2 @f(i2 %x) {
entry:
  ret i2 undef
}`,
	},
	{
		name: "undef-shl-IS-undef-via-overshift", sem: "legacy-nondet", want: Verified,
		// Subtle: "shl 1, undef → undef" looks wrong (in-range shifts
		// only produce 1 or 2), but the undef amount can also resolve
		// to 2 or 3 — an over-shift, which §2.3 defines as undef under
		// the legacy semantics. The undef result therefore IS in the
		// source's behaviour set and the fold verifies. Our checker
		// discovered this during corpus construction.
		src: `define i2 @f() {
entry:
  %r = shl i2 1, undef
  ret i2 %r
}`,
		tgt: `define i2 @f() {
entry:
  ret i2 undef
}`,
	},
	{
		name: "inrange-shl-of-undef-amount-not-undef", sem: "legacy-nondet", want: Refuted,
		// Masking the amount to stay in range removes the over-shift
		// escape hatch: now only 1 and 2 are producible and the fold
		// to undef is wrong.
		src: `define i2 @f() {
entry:
  %amt = and i2 undef, 1
  %r = shl i2 1, %amt
  ret i2 %r
}`,
		tgt: `define i2 @f() {
entry:
  ret i2 undef
}`,
	},

	// --- poison strength (§3.4 footnote: poison stronger than undef) ---
	{
		name: "undef-refines-to-concrete", sem: "legacy-nondet", want: Verified,
		src: `define i2 @f() {
entry:
  ret i2 undef
}`,
		tgt: `define i2 @f() {
entry:
  ret i2 2
}`,
	},
	{
		name: "undef-to-poison-unsound", sem: "legacy-nondet", want: Refuted,
		src: `define i2 @f() {
entry:
  ret i2 undef
}`,
		tgt: `define i2 @f() {
entry:
  ret i2 poison
}`,
	},
	{
		name: "poison-to-undef-sound", sem: "legacy-nondet", want: Verified,
		src: `define i2 @f() {
entry:
  ret i2 poison
}`,
		tgt: `define i2 @f() {
entry:
  ret i2 undef
}`,
	},

	// --- control flow ---
	{
		name: "branch-round-trip", sem: "freeze", want: Verified,
		src: `define i2 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  ret i2 1
b:
  ret i2 2
}`,
		tgt: `define i2 @f(i1 %c) {
entry:
  %r = select i1 %c, i2 1, i2 2
  ret i2 %r
}`,
	},
	{
		name: "branch-to-select-hides-UB", sem: "freeze", want: Verified,
		// Wait: converting branch to select REMOVES the branch-on-
		// poison UB — removing UB is a refinement, so this verifies.
		src: `define i2 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  ret i2 1
b:
  ret i2 2
}`,
		tgt: `define i2 @f(i1 %c) {
entry:
  %fc = freeze i1 %c
  %r = select i1 %fc, i2 1, i2 2
  ret i2 %r
}`,
	},
	{
		name: "select-to-branch-introduces-UB", sem: "freeze", want: Refuted,
		src: `define i2 @f(i1 %c) {
entry:
  %r = select i1 %c, i2 1, i2 2
  ret i2 %r
}`,
		tgt: `define i2 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  ret i2 1
b:
  ret i2 2
}`,
	},
	{
		name: "dead-code-removal", sem: "freeze", want: Verified,
		src: `define i2 @f(i2 %a) {
entry:
  %dead = udiv i2 1, %a
  ret i2 %a
}`,
		tgt: `define i2 @f(i2 %a) {
entry:
  ret i2 %a
}`,
	},
	{
		name: "speculating-division-unsound", sem: "freeze", want: Refuted,
		src: `define i2 @f(i2 %a) {
entry:
  ret i2 %a
}`,
		tgt: `define i2 @f(i2 %a) {
entry:
  %dead = udiv i2 1, %a
  ret i2 %a
}`,
	},

	// --- nsw reasoning (§2) ---
	{
		name: "nsw-inc-sgt", sem: "freeze", want: Verified,
		// a + 1 > a with nsw folds to true.
		src: `define i1 @f(i3 %a) {
entry:
  %i = add nsw i3 %a, 1
  %r = icmp sgt i3 %i, %a
  ret i1 %r
}`,
		tgt: `define i1 @f(i3 %a) {
entry:
  ret i1 true
}`,
	},
	{
		name: "wrapping-inc-sgt-not-true", sem: "freeze", want: Refuted,
		src: `define i1 @f(i3 %a) {
entry:
  %i = add i3 %a, 1
  %r = icmp sgt i3 %i, %a
  ret i1 %r
}`,
		tgt: `define i1 @f(i3 %a) {
entry:
  ret i1 true
}`,
	},
}

func TestAliveCorpus(t *testing.T) {
	for _, c := range corpus {
		c := c
		t.Run(c.name, func(t *testing.T) {
			opts := semOptions(c.sem)
			src := ir.MustParseFunc(c.src)
			tgt := ir.MustParseFunc(c.tgt)
			r := Check(src, tgt, DefaultConfig(opts, opts))
			if r.Status != c.want {
				t.Errorf("%s under %s: got %s, want %v", c.name, c.sem, r, c.want)
			}
		})
	}
}

// Every Verified corpus case must also verify in a fresh direction
// check with itself (sanity that parsing both sides kept signatures
// compatible).
func TestAliveCorpusSelfChecks(t *testing.T) {
	for _, c := range corpus {
		opts := semOptions(c.sem)
		for _, side := range []string{c.src, c.tgt} {
			f := ir.MustParseFunc(side)
			r := Check(f, f, DefaultConfig(opts, opts))
			if r.Status == Refuted {
				t.Errorf("%s: self-refinement refuted:\n%s\n%s", c.name, side, r)
			}
		}
	}
}
