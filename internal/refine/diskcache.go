package refine

import (
	"tameir/internal/cache"
	"tameir/internal/core"
)

// DiskCache ties the process's warm-startable caches to one
// -cache-dir: the behaviour-set memo (full snapshot) and the bytecode
// lowering cache (metadata only — what to lower, not the bytes).
// Drivers open it, Load before the run, Save after; everything in the
// directory is stamped with core.SemanticsFingerprint so a build whose
// semantics moved rejects old snapshots wholesale and runs cold.
type DiskCache struct {
	dir  *cache.Dir
	memo *Memo
}

// Snapshot kinds (file basenames within the cache dir).
const (
	memoSnapshotKind  = "memo"
	lowerSnapshotKind = "lowerings"
)

// OpenDiskCache returns a disk cache over path, warm-starting memo
// (which may be nil to persist only lowering metadata). Returns nil
// when path is empty, and a nil *DiskCache is a valid no-op — Load
// and Save do nothing — so drivers need no flag branch.
func OpenDiskCache(path string, memo *Memo) *DiskCache {
	if path == "" {
		return nil
	}
	return &DiskCache{dir: cache.NewDir(path, core.SemanticsFingerprint), memo: memo}
}

// Load installs the directory's snapshots: memo behaviour sets into
// the memo, lowering metadata into core's warm-promotion set. Missing,
// stale or corrupt snapshots load nothing (stale ones count as
// rejections); only unexpected I/O errors surface. Returns the number
// of memo entries installed.
func (d *DiskCache) Load() (memoEntries int, err error) {
	if d == nil {
		return 0, nil
	}
	if d.memo != nil {
		var snap MemoSnapshot
		ok, err := d.dir.Load(memoSnapshotKind, &snap)
		if err != nil {
			return 0, err
		}
		if ok {
			memoEntries = d.memo.LoadSnapshot(&snap)
		}
	}
	var lower core.LowerSnapshot
	ok, err := d.dir.Load(lowerSnapshotKind, &lower)
	if err != nil {
		return memoEntries, err
	}
	if ok {
		core.InstallLowerSnapshot(&lower)
	}
	return memoEntries, nil
}

// Save writes the current memo contents and lowering-cache metadata
// back to the directory, creating it on first use.
func (d *DiskCache) Save() error {
	if d == nil {
		return nil
	}
	if d.memo != nil {
		if err := d.dir.Save(memoSnapshotKind, d.memo.Snapshot()); err != nil {
			return err
		}
	}
	return d.dir.Save(lowerSnapshotKind, core.LowerSnapshotNow())
}

// Stats returns the disk traffic counters: snapshot files loaded,
// memo hits served by disk-loaded entries, wholesale rejections.
func (d *DiskCache) Stats() cache.DiskStats {
	if d == nil {
		return cache.DiskStats{}
	}
	s := cache.DiskStats{Loads: d.dir.Loads(), StaleRejects: d.dir.StaleRejects()}
	if d.memo != nil {
		s.Hits = d.memo.DiskHits()
	}
	return s
}
