package refine

import (
	"path/filepath"
	"reflect"
	"testing"

	"tameir/internal/cache"
	"tameir/internal/core"
	"tameir/internal/ir"
)

// populateMemo runs the shared pair corpus through Check with memo
// enabled and returns the verdicts alongside the memo.
func populateMemo(t *testing.T, opts core.Options, memo *Memo) []Result {
	t.Helper()
	cfg := DefaultConfig(opts, opts)
	cfg.Memo = memo
	var out []Result
	for _, p := range memoPairs {
		if p.legacyOnly && opts.Mode == core.Freeze {
			continue
		}
		out = append(out, Check(ir.MustParseFunc(p.src), ir.MustParseFunc(p.tgt), cfg))
	}
	return out
}

// The snapshot round-trip property: Snapshot → LoadSnapshot into a
// fresh memo → Snapshot is lossless, and the encode → decode leg
// through the real file layer loses nothing either.
func TestMemoSnapshotRoundTrip(t *testing.T) {
	for _, opts := range []core.Options{
		core.FreezeOptions(),
		core.LegacyOptions(core.BranchPoisonNondet),
	} {
		memo := NewMemo(0)
		populateMemo(t, opts, memo)
		snap := memo.Snapshot()
		if len(snap.Entries) == 0 {
			t.Fatal("campaign populated nothing")
		}

		fresh := NewMemo(0)
		if n := fresh.LoadSnapshot(snap); n == 0 {
			t.Fatal("LoadSnapshot installed nothing")
		}
		if again := fresh.Snapshot(); !memoSnapshotEqual(snap, again) {
			t.Fatalf("snapshot round trip lossy:\nbefore: %+v\nafter:  %+v", snap, again)
		}

		path := filepath.Join(t.TempDir(), "memo.snap")
		if err := cache.WriteFile(path, "memo", core.SemanticsFingerprint, snap); err != nil {
			t.Fatal(err)
		}
		var dec MemoSnapshot
		if err := cache.ReadFile(path, "memo", core.SemanticsFingerprint, &dec); err != nil {
			t.Fatal(err)
		}
		if !memoSnapshotEqual(snap, &dec) {
			t.Fatal("file encode→decode lossy")
		}
	}
}

// A warm-started memo must serve the same verdicts a cold one
// computes, and its hits on disk-loaded entries must be counted.
func TestMemoSnapshotWarmStartCountsDiskHits(t *testing.T) {
	opts := core.FreezeOptions()
	cold := NewMemo(0)
	want := populateMemo(t, opts, cold)

	warm := NewMemo(0)
	warm.LoadSnapshot(cold.Snapshot())
	if warm.DiskHits() != 0 {
		t.Fatal("disk hits counted before any lookup")
	}
	got := populateMemo(t, opts, warm)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("warm memo changed verdicts:\ncold: %+v\nwarm: %+v", want, got)
	}
	if warm.DiskHits() == 0 {
		t.Fatal("warm run served no hits from disk-loaded entries")
	}
	if warm.DiskHits() > warm.Hits() {
		t.Fatalf("disk hits %d exceed total hits %d", warm.DiskHits(), warm.Hits())
	}
}

// Loading a snapshot must never overwrite an entry the process already
// computed: live entries win, and the duplicate is not counted as
// installed.
func TestMemoSnapshotLoadDoesNotOverwrite(t *testing.T) {
	opts := core.FreezeOptions()
	memo := NewMemo(0)
	populateMemo(t, opts, memo)
	before := memo.Snapshot()
	if n := memo.LoadSnapshot(before); n != 0 {
		t.Fatalf("reloading a memo's own snapshot installed %d entries, want 0", n)
	}
	if after := memo.Snapshot(); !memoSnapshotEqual(before, after) {
		t.Fatal("self-reload changed contents")
	}
}
