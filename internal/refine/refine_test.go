package refine

import (
	"testing"

	"tameir/internal/core"
	"tameir/internal/ir"
)

func check(t *testing.T, srcIR, tgtIR string, srcOpts, tgtOpts core.Options) Result {
	t.Helper()
	src := ir.MustParseFunc(srcIR)
	tgt := ir.MustParseFunc(tgtIR)
	return Check(src, tgt, DefaultConfig(srcOpts, tgtOpts))
}

func wantStatus(t *testing.T, r Result, want Status) {
	t.Helper()
	if r.Status != want {
		t.Fatalf("status %v, want %v: %s", r.Status, want, r)
	}
}

// Section 2.4: with nsw, (a+b > a)  ==>  (b > 0) is a valid transform.
func TestNswCmpTransformValid(t *testing.T) {
	src := `define i1 @f(i2 %a, i2 %b) {
entry:
  %add = add nsw i2 %a, %b
  %cmp = icmp sgt i2 %add, %a
  ret i1 %cmp
}`
	tgt := `define i1 @f(i2 %a, i2 %b) {
entry:
  %cmp = icmp sgt i2 %b, 0
  ret i1 %cmp
}`
	r := check(t, src, tgt, core.FreezeOptions(), core.FreezeOptions())
	wantStatus(t, r, Verified)
	if !r.Exhaustive {
		t.Error("i2 inputs should be exhaustive")
	}
}

// Section 2.4: without nsw the same transform is invalid (wrap-around).
func TestWrappingCmpTransformInvalid(t *testing.T) {
	src := `define i1 @f(i2 %a, i2 %b) {
entry:
  %add = add i2 %a, %b
  %cmp = icmp sgt i2 %add, %a
  ret i1 %cmp
}`
	tgt := `define i1 @f(i2 %a, i2 %b) {
entry:
  %cmp = icmp sgt i2 %b, 0
  ret i1 %cmp
}`
	r := check(t, src, tgt, core.FreezeOptions(), core.FreezeOptions())
	wantStatus(t, r, Refuted)
}

// Section 2.4's middle step: defining overflow as *undef* is still too
// weak to justify the comparison transform.
func TestUndefOverflowStillInvalid(t *testing.T) {
	// Model "add that yields undef on overflow" directly: on the
	// overflowing input a=1 (max signed i2), b=1, source returns
	// undef > 1 which can only be false, while target returns true.
	src := `define i1 @f() {
entry:
  %cmp = icmp sgt i2 undef, 1
  ret i1 %cmp
}`
	tgt := `define i1 @f() {
entry:
  ret i1 true
}`
	r := check(t, src, tgt, core.LegacyOptions(core.BranchPoisonIsUB), core.LegacyOptions(core.BranchPoisonIsUB))
	wantStatus(t, r, Refuted)
}

// Section 3.1: rewriting 2*x as x+x is wrong when x may be undef
// (result set grows from evens to everything)...
func TestMulToAddInvalidWithUndef(t *testing.T) {
	src := `define i2 @f() {
entry:
  %y = mul i2 undef, 2
  ret i2 %y
}`
	tgt := `define i2 @f() {
entry:
  %y = add i2 undef, undef
  ret i2 %y
}`
	// The target's two undef uses resolve independently: it can
	// produce odd values the source cannot.
	r := check(t, src, tgt, core.LegacyOptions(core.BranchPoisonIsUB), core.LegacyOptions(core.BranchPoisonIsUB))
	wantStatus(t, r, Refuted)
}

// ...but under the freeze semantics there is no undef, and the same
// rewrite over a parameter is fine (poison*2 = poison+poison = poison).
func TestMulToAddValidUnderFreeze(t *testing.T) {
	src := `define i2 @f(i2 %x) {
entry:
  %y = mul i2 %x, 2
  ret i2 %y
}`
	tgt := `define i2 @f(i2 %x) {
entry:
  %y = add i2 %x, %x
  ret i2 %y
}`
	r := check(t, src, tgt, core.FreezeOptions(), core.FreezeOptions())
	wantStatus(t, r, Verified)
}

// And the same rewrite is invalid in legacy mode because %x can be the
// undef *parameter*.
func TestMulToAddInvalidLegacyParam(t *testing.T) {
	src := `define i2 @f(i2 %x) {
entry:
  %y = mul i2 %x, 2
  ret i2 %y
}`
	tgt := `define i2 @f(i2 %x) {
entry:
  %y = add i2 %x, %x
  ret i2 %y
}`
	r := check(t, src, tgt, core.LegacyOptions(core.BranchPoisonIsUB), core.LegacyOptions(core.BranchPoisonIsUB))
	wantStatus(t, r, Refuted)
	if r.CE == nil || !r.CE.Args[0].IsUndef() {
		t.Fatalf("counterexample should be undef input: %s", r)
	}
}

// Section 3.4 / PR31633: select %c, %x, undef --> %x is wrong because
// %x could be poison, which is stronger than undef.
func TestSelectUndefArmCollapseInvalid(t *testing.T) {
	src := `define i2 @f(i1 %c, i2 %x) {
entry:
  %v = select i1 %c, i2 %x, i2 undef
  ret i2 %v
}`
	tgt := `define i2 @f(i1 %c, i2 %x) {
entry:
  ret i2 %x
}`
	legacy := core.LegacyOptions(core.BranchPoisonIsUB)
	// Under the Figure-5-style chosen-arm-only select (no
	// either-arm-poison leak), c=0 ^ x=poison gives src=undef,
	// tgt=poison.
	legacy.SelectArmPoisonEither = false
	r := check(t, src, tgt, legacy, legacy)
	wantStatus(t, r, Refuted)
}

// Section 3.4: select %c, true, %x --> or %c, %x is invalid when %c
// may be poison under the chosen-arm-only semantics (source with c=1
// returns true; target returns poison when x is poison... the actual
// failing case: c=true, x=poison).
func TestSelectToOrInvalid(t *testing.T) {
	src := `define i1 @f(i1 %c, i1 %x) {
entry:
  %v = select i1 %c, i1 true, i1 %x
  ret i1 %v
}`
	tgt := `define i1 @f(i1 %c, i1 %x) {
entry:
  %v = or i1 %c, %x
  ret i1 %v
}`
	opts := core.FreezeOptions()
	r := check(t, src, tgt, opts, opts)
	wantStatus(t, r, Refuted)
	// The safe version freezes %c (Section 6's InstCombine fix).
	safe := `define i1 @f(i1 %c, i1 %x) {
entry:
  %cf = freeze i1 %c
  %v = or i1 %cf, %x
  ret i1 %v
}`
	// Hmm: freeze(%c) does not help if %x is poison; the actual safe
	// direction keeps the select. or(c, poison) with c frozen is still
	// poison while select(c=1,...) was true. Confirm it is still
	// refuted: the transformation really must be removed or the select
	// semantics changed (the paper's "tension", §3.4).
	r = check(t, src, safe, opts, opts)
	wantStatus(t, r, Refuted)
	// Under the either-arm-poison select semantics the original
	// transform IS sound (that is exactly the tension: each choice
	// breaks a different optimization).
	legacyEither := core.LegacyOptions(core.BranchPoisonIsUB)
	r = check(t, src, tgt, legacyEither, legacyEither)
	wantStatus(t, r, Verified)
}

// SimplifyCFG's phi→select is sound under the Figure 5 semantics.
func TestPhiToSelectValidUnderFreeze(t *testing.T) {
	src := `define i2 @f(i1 %c, i2 %a, i2 %b) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %m
e:
  br label %m
m:
  %x = phi i2 [ %a, %t ], [ %b, %e ]
  ret i2 %x
}`
	tgt := `define i2 @f(i1 %c, i2 %a, i2 %b) {
entry:
  %x = select i1 %c, i2 %a, i2 %b
  ret i2 %x
}`
	r := check(t, src, tgt, core.FreezeOptions(), core.FreezeOptions())
	wantStatus(t, r, Verified)
}

// ...but NOT under the legacy either-arm-poison select: the branch
// never evaluates the untaken arm, the select leaks its poison.
func TestPhiToSelectInvalidUnderEitherArmSelect(t *testing.T) {
	src := `define i2 @f(i1 %c, i2 %a, i2 %b) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %m
e:
  br label %m
m:
  %x = phi i2 [ %a, %t ], [ %b, %e ]
  ret i2 %x
}`
	tgt := `define i2 @f(i1 %c, i2 %a, i2 %b) {
entry:
  %x = select i1 %c, i2 %a, i2 %b
  ret i2 %x
}`
	legacy := core.LegacyOptions(core.BranchPoisonIsUB)
	r := check(t, src, tgt, legacy, legacy)
	wantStatus(t, r, Refuted)
}

// Reverse predication (§5.2): select → branches requires freezing the
// condition under the paper's semantics.
func TestSelectToBranchesNeedsFreeze(t *testing.T) {
	src := `define i2 @f(i1 %c, i2 %a, i2 %b) {
entry:
  %x = select i1 %c, i2 %a, i2 %b
  ret i2 %x
}`
	noFreeze := `define i2 @f(i1 %c, i2 %a, i2 %b) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %m
e:
  br label %m
m:
  %x = phi i2 [ %a, %t ], [ %b, %e ]
  ret i2 %x
}`
	withFreeze := `define i2 @f(i1 %c, i2 %a, i2 %b) {
entry:
  %c2 = freeze i1 %c
  br i1 %c2, label %t, label %e
t:
  br label %m
e:
  br label %m
m:
  %x = phi i2 [ %a, %t ], [ %b, %e ]
  ret i2 %x
}`
	opts := core.FreezeOptions()
	r := check(t, src, noFreeze, opts, opts)
	wantStatus(t, r, Refuted) // branch on poison is UB, select was not
	r = check(t, src, withFreeze, opts, opts)
	wantStatus(t, r, Verified)
}

// The udiv→select transform of §3.4 ("%r = udiv %a, C" to icmp+select)
// is valid under the Figure 5 select semantics.
func TestUdivToSelectValid(t *testing.T) {
	// With C = 2 on i2: udiv %a, 2 == (a < 2) ? 0 : 1.
	src := `define i2 @f(i2 %a) {
entry:
  %r = udiv i2 %a, 2
  ret i2 %r
}`
	tgt := `define i2 @f(i2 %a) {
entry:
  %c = icmp ult i2 %a, 2
  %r = select i1 %c, i2 0, i2 1
  ret i2 %r
}`
	r := check(t, src, tgt, core.FreezeOptions(), core.FreezeOptions())
	wantStatus(t, r, Verified)
	// Under the select-on-poison-is-UB semantics it is invalid: a
	// poison %a makes the target UB while the source just yields...
	// careful: udiv with poison numerator is poison here, and select
	// on the poison comparison becomes UB.
	ubSel := core.LegacyOptions(core.BranchPoisonIsUB)
	ubSel.SelectPoisonCond = core.SelectPoisonCondUB
	r = check(t, src, tgt, ubSel, ubSel)
	wantStatus(t, r, Refuted)
}

// Refinement direction sanity: a function refines itself; constants
// refine poison; poison does not refine a constant.
func TestRefinementOrder(t *testing.T) {
	poisonFn := `define i2 @f() {
entry:
  ret i2 poison
}`
	constFn := `define i2 @f() {
entry:
  ret i2 1
}`
	undefFn := `define i2 @f() {
entry:
  ret i2 undef
}`
	ubFn := `define i2 @f() {
entry:
  %x = udiv i2 1, 0
  ret i2 %x
}`
	legacy := core.LegacyOptions(core.BranchPoisonIsUB)
	for _, f := range []string{poisonFn, constFn, undefFn} {
		r := check(t, f, f, legacy, legacy)
		if r.Status != Verified {
			t.Errorf("self-refinement failed: %s", r)
		}
	}
	wantStatus(t, check(t, poisonFn, constFn, legacy, legacy), Verified) // const ⊑ poison
	wantStatus(t, check(t, poisonFn, undefFn, legacy, legacy), Verified) // undef ⊑ poison
	wantStatus(t, check(t, undefFn, constFn, legacy, legacy), Verified)  // const ⊑ undef
	wantStatus(t, check(t, constFn, poisonFn, legacy, legacy), Refuted)  // poison ⋢ const
	wantStatus(t, check(t, undefFn, poisonFn, legacy, legacy), Refuted)  // poison ⋢ undef
	wantStatus(t, check(t, constFn, undefFn, legacy, legacy), Refuted)   // undef ⋢ const
	wantStatus(t, check(t, ubFn, constFn, legacy, legacy), Verified)     // anything ⊑ UB
	wantStatus(t, check(t, constFn, ubFn, legacy, legacy), Refuted)      // UB ⋢ const
}

// freeze(freeze(x)) → freeze(x) and freeze(const) → const (§6's
// InstCombine additions) are valid.
func TestFreezeFolds(t *testing.T) {
	opts := core.FreezeOptions()
	src := `define i2 @f(i2 %x) {
entry:
  %a = freeze i2 %x
  %b = freeze i2 %a
  ret i2 %b
}`
	tgt := `define i2 @f(i2 %x) {
entry:
  %a = freeze i2 %x
  ret i2 %a
}`
	wantStatus(t, check(t, src, tgt, opts, opts), Verified)
	src2 := `define i2 @f() {
entry:
  %a = freeze i2 1
  ret i2 %a
}`
	tgt2 := `define i2 @f() {
entry:
  ret i2 1
}`
	wantStatus(t, check(t, src2, tgt2, opts, opts), Verified)
}

// Duplicating a freeze is NOT sound (§5.5, pitfall 1).
func TestFreezeDuplicationInvalid(t *testing.T) {
	opts := core.FreezeOptions()
	src := `define i2 @f(i2 %x) {
entry:
  %y = freeze i2 %x
  %d = sub i2 %y, %y
  ret i2 %d
}`
	tgt := `define i2 @f(i2 %x) {
entry:
  %y1 = freeze i2 %x
  %y2 = freeze i2 %x
  %d = sub i2 %y1, %y2
  ret i2 %d
}`
	wantStatus(t, check(t, src, tgt, opts, opts), Refuted)
}

// Dropping nsw is always sound (refinement allows losing poison).
func TestDropNswSound(t *testing.T) {
	src := `define i2 @f(i2 %a, i2 %b) {
entry:
  %r = add nsw i2 %a, %b
  ret i2 %r
}`
	tgt := `define i2 @f(i2 %a, i2 %b) {
entry:
  %r = add i2 %a, %b
  ret i2 %r
}`
	opts := core.FreezeOptions()
	wantStatus(t, check(t, src, tgt, opts, opts), Verified)
	// And the reverse — adding nsw — is not.
	wantStatus(t, check(t, tgt, src, opts, opts), Refuted)
}

func TestBehaviorsIncompleteOnTimeout(t *testing.T) {
	fn := ir.MustParseFunc(`define void @spin() {
entry:
  br label %l
l:
  br label %l
}`)
	cfg := DefaultConfig(core.FreezeOptions(), core.FreezeOptions())
	cfg.Fuel = 100
	b := Behaviors(fn, nil, core.FreezeOptions(), cfg)
	if !b.Incomplete {
		t.Error("timeout should mark behaviour set incomplete")
	}
	if ok, _ := Refines(b, b); ok {
		t.Error("incomplete sets must not verify")
	}
}

func TestCandidateValues(t *testing.T) {
	vs, ex := CandidateValues(ir.I2, core.Legacy)
	if !ex || len(vs) != 6 { // 0,1,2,3,poison,undef
		t.Errorf("i2 legacy candidates: %d exhaustive=%v", len(vs), ex)
	}
	vs, ex = CandidateValues(ir.I2, core.Freeze)
	if !ex || len(vs) != 5 { // no undef
		t.Errorf("i2 freeze candidates: %d exhaustive=%v", len(vs), ex)
	}
	vs, ex = CandidateValues(ir.I32, core.Freeze)
	if ex || len(vs) < 5 {
		t.Errorf("i32 candidates: %d exhaustive=%v", len(vs), ex)
	}
	vs, ex = CandidateValues(ir.Vec(2, ir.I1), core.Freeze)
	if !ex || len(vs) != 9 { // 3 lane states ^ 2 lanes
		t.Errorf("<2 x i1> candidates: %d exhaustive=%v", len(vs), ex)
	}
}

func TestCheckSampledIsInconclusive(t *testing.T) {
	src := `define i32 @f(i32 %x) {
entry:
  ret i32 %x
}`
	r := check(t, src, src, core.FreezeOptions(), core.FreezeOptions())
	if r.Status != Inconclusive || r.Exhaustive {
		t.Errorf("i32 identity check should be inconclusive/sampled: %s", r)
	}
}
