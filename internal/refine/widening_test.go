package refine

import (
	"testing"

	"tameir/internal/core"
)

// Section 5.4: load widening. Widening a 16-bit load to a 32-bit load
// is WRONG under the poison semantics — the extra 16 bits may be
// uninitialized (poison) and ty↑ poisons the whole scalar. Widening to
// a *vector* load is right: poison stays per-element.

const narrowLoadSrc = `define i16 @f() {
entry:
  %buf = alloca i32, i32 1
  store i16 7, ptr %buf
  %a = load i16, ptr %buf
  ret i16 %a
}`

const scalarWidenedSrc = `define i16 @f() {
entry:
  %buf = alloca i32, i32 1
  store i16 7, ptr %buf
  %wide = load i32, ptr %buf
  %a = trunc i32 %wide to i16
  ret i16 %a
}`

const vectorWidenedSrc = `define i16 @f() {
entry:
  %buf = alloca i32, i32 1
  store i16 7, ptr %buf
  %tmp = load <2 x i16>, ptr %buf
  %a = extractelement <2 x i16> %tmp, i32 0
  ret i16 %a
}`

func TestSection54LoadWidening(t *testing.T) {
	opts := core.FreezeOptions()
	cfg := DefaultConfig(opts, opts)

	r := check(t, narrowLoadSrc, scalarWidenedSrc, opts, opts)
	if r.Status != Refuted {
		t.Errorf("scalar load widening should be refuted (§5.4): %s", r)
	}
	r = check(t, narrowLoadSrc, vectorWidenedSrc, opts, opts)
	if r.Status != Verified {
		t.Errorf("vector load widening should verify (§5.4): %s", r)
	}
	_ = cfg
}

// Section 10.1: "small memcpy calls can be optimized into load/store
// operations of 4 or 8-bytes integers, but this is incorrect under the
// proposed semantics because existence of a poison bit in an input
// array element may contaminate the entire loaded value."
//
// Source: copy two bytes one at a time (one initialized, one not),
// then read back the initialized one. Target: copy both with a single
// i16 load/store.
const byteCopySrc = `define i8 @f() {
entry:
  %src = alloca i16, i32 1
  %dst = alloca i16, i32 1
  store i8 42, ptr %src
  %b0 = load i8, ptr %src
  store i8 %b0, ptr %dst
  %p1 = getelementptr i8, ptr %src, i32 1
  %q1 = getelementptr i8, ptr %dst, i32 1
  %b1 = load i8, ptr %p1
  store i8 %b1, ptr %q1
  %r = load i8, ptr %dst
  ret i8 %r
}`

const wideCopySrc = `define i8 @f() {
entry:
  %src = alloca i16, i32 1
  %dst = alloca i16, i32 1
  store i8 42, ptr %src
  %w = load i16, ptr %src
  store i16 %w, ptr %dst
  %r = load i8, ptr %dst
  ret i8 %r
}`

func TestSection10MemcpyNarrowing(t *testing.T) {
	opts := core.FreezeOptions()

	// Byte-wise copy: the defined byte survives; returns 42.
	r := check(t, byteCopySrc, byteCopySrc, opts, opts)
	if r.Status != Verified {
		t.Fatalf("byte copy self-check: %s", r)
	}
	// Widening the copy to i16 is a refinement violation: the poison
	// high byte poisons the whole 16-bit load, and the wide store
	// writes poison over the defined byte too.
	r = check(t, byteCopySrc, wideCopySrc, opts, opts)
	if r.Status != Refuted {
		t.Errorf("i16-widened memcpy should be refuted (§10.1): %s", r)
	}
	// The vector-based fix works here as well.
	vecCopy := `define i8 @f() {
entry:
  %src = alloca i16, i32 1
  %dst = alloca i16, i32 1
  store i8 42, ptr %src
  %w = load <2 x i8>, ptr %src
  store <2 x i8> %w, ptr %dst
  %r = load i8, ptr %dst
  ret i8 %r
}`
	r = check(t, byteCopySrc, vecCopy, opts, opts)
	if r.Status != Verified {
		t.Errorf("vector memcpy should verify: %s", r)
	}
}

// Legacy contrast: under undef semantics the scalar widenings are
// refinements... they are NOT exact either — undef bits also smear
// through ty↑? Legacy ty↑ resolves partially-undef lanes bit-wise, so
// the defined byte survives a wide load. Both widenings verify, which
// is why LLVM shipped them for years without (visible) incident.
func TestWideningLegacyContrast(t *testing.T) {
	legacy := core.LegacyOptions(core.BranchPoisonNondet)
	r := check(t, narrowLoadSrc, scalarWidenedSrc, legacy, legacy)
	if r.Status == Refuted {
		t.Errorf("scalar widening should be acceptable under legacy undef memory: %s", r)
	}
	r = check(t, byteCopySrc, wideCopySrc, legacy, legacy)
	if r.Status == Refuted {
		t.Errorf("wide memcpy should be acceptable under legacy undef memory: %s", r)
	}
}
