package refine

import (
	"tameir/internal/core"
	"tameir/internal/telemetry"
)

// CheckMetrics accumulates validator counters. It is plain (non-atomic)
// state owned by one goroutine — campaigns give each shard its own and
// merge in shard order — and publishes into a telemetry registry once
// per batch via Publish.
type CheckMetrics struct {
	// Checks counts Check calls; Inputs counts input tuples swept.
	// Both are pure functions of the work partition.
	Checks uint64
	Inputs uint64

	// SetsComputed / SetsMemoHit split behaviour-set consumption by
	// provenance. Under a shared cross-shard memo the split depends on
	// scheduling (which worker computes a set first); the SUM is
	// deterministic, and SetSize observes every consumed set so its
	// distribution is deterministic too.
	SetsComputed uint64
	SetsMemoHit  uint64

	// Execs counts engine executions actually performed (memo hits
	// contribute nothing — so this is scheduling-dependent whenever the
	// memo is shared).
	Execs uint64

	// SetSize is the |behaviour set| distribution over every set
	// consumed: concrete return values plus one per UB/poison/undef/
	// void flag.
	SetSize telemetry.LocalHist

	// Engine accumulates the executors' counters (steps, frames).
	Engine core.EngineMetrics
}

// setSize is the histogram measure of a behaviour set.
func setSize(b BehaviorSet) uint64 {
	n := uint64(len(b.Rets))
	for _, f := range []bool{b.UB, b.Poison, b.Undef, b.Void} {
		if f {
			n++
		}
	}
	return n
}

// observe records one consumed behaviour set.
func (m *CheckMetrics) observe(b BehaviorSet, memoHit bool, execs uint64) {
	if m == nil {
		return
	}
	if memoHit {
		m.SetsMemoHit++
	} else {
		m.SetsComputed++
		m.Execs += execs
	}
	m.SetSize.Observe(setSize(b))
}

// Add folds o into m (shard-order merge).
func (m *CheckMetrics) Add(o *CheckMetrics) {
	m.Checks += o.Checks
	m.Inputs += o.Inputs
	m.SetsComputed += o.SetsComputed
	m.SetsMemoHit += o.SetsMemoHit
	m.Execs += o.Execs
	for i, c := range o.SetSize.Buckets {
		m.SetSize.Buckets[i] += c
	}
	m.SetSize.Sum += o.SetSize.Sum
	m.Engine.Add(o.Engine)
}

// Publish folds the counters into reg. Checks, Inputs, and the
// set-size distribution are Deterministic unconditionally; the
// computed/memo-hit split, the exec count, and the engine counters
// take memoClass — pass Deterministic when no memo (or a private
// per-shard memo) is in play and Scheduling when a shared cross-shard
// memo makes the split a race.
func (m *CheckMetrics) Publish(reg *telemetry.Registry, memoClass telemetry.Class) {
	if m == nil || reg == nil {
		return
	}
	reg.Counter("check_checks_total", telemetry.Deterministic, "refinement checks run").Add(m.Checks)
	reg.Counter("check_inputs_total", telemetry.Deterministic, "input tuples swept").Add(m.Inputs)
	var counts [telemetry.HistBuckets]uint64
	var n uint64
	for i, c := range m.SetSize.Buckets {
		counts[i] = c
		n += c
	}
	if n > 0 {
		reg.Histogram("check_set_size", telemetry.Deterministic, "behaviour-set sizes consumed").
			AddBuckets(&counts, m.SetSize.Sum)
	}
	reg.Counter("check_sets_computed_total", memoClass, "behaviour sets enumerated").Add(m.SetsComputed)
	reg.Counter("check_sets_memo_hits_total", memoClass, "behaviour sets served by the memo").Add(m.SetsMemoHit)
	reg.Counter("check_execs_total", memoClass, "engine executions performed").Add(m.Execs)
	m.Engine.Publish(reg, memoClass)
}
