package refine

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"

	"tameir/internal/core"
	"tameir/internal/ir"
)

// Memo caches behaviour sets across refinement checks, keyed by the
// canonical (function, semantics, input vector) triple.
//
// Exhaustive campaigns are dominated by structurally identical work:
// most candidates pass through an optimizer unchanged or collapse to
// one of a few small forms, so the same behaviour sets are re-derived
// over and over. The memo turns those derivations into lookups.
//
// The cache is two-level so the hot path never touches the expensive
// part of the key. The first level maps the canonical function text
// (plus a semantics/bounds fingerprint) to a per-function entry; a
// per-session two-slot identity cache — two slots because Check
// alternates between src and tgt on every input — resolves repeat
// (function, options) pairs by pointer comparison, so the function is
// printed once per Check side, not once per input. The second level
// maps the input vector's short key (or its ordinal in Check's
// deterministic input enumeration) to its behaviour set.
//
// Keys are full canonical strings, not hashes, so a hit can never be a
// collision: a memoized verdict is always the verdict the engine would
// have produced (see TestMemoNeverChangesVerdict). Entries whose sets
// are Incomplete are not cached — they depend on enumeration bounds in
// a way that is cheap to just redo. The identity cache assumes
// functions are not mutated between checks that share a Memo; the
// pipeline upholds this by checking sources it never mutates and
// transforming private clones.
//
// A Memo IS safe for concurrent use: the function table is split over
// memoShardCount lock-striped shards and the counters are atomic, so
// one memo can back every worker of a campaign and hits cross worker
// shards. Each goroutine must drive it through its own MemoSession
// (NewSession), which holds the only unshared state — the identity
// cache. When the entry cap is reached, a clock (second-chance) sweep
// evicts cold behaviour sets to admit new ones, so long campaigns keep
// a warm working set; an eviction can cost a recomputation but never
// changes a verdict (TestMemoEvictionKeepsVerdicts).
type Memo struct {
	max    int
	shards [memoShardCount]memoShard

	hits, lookups, evictions atomic.Uint64

	// ring is the clock of admitted behaviour sets, bounded by max.
	ring struct {
		mu   sync.Mutex
		refs []evictRef
		hand int
	}
}

// memoShardCount is the lock-striping factor. 64 keeps contention
// negligible at any plausible worker count while costing one FNV hash
// per per-function entry resolution (once per Check side, thanks to
// the session identity cache).
const memoShardCount = 64

type memoShard struct {
	mu    sync.Mutex
	funcs map[string]*memoFuncEntry
}

type memoFuncEntry struct {
	shard *memoShard // home shard; guards all mutable state below
	// sets is the generic second level, keyed by input-vector text.
	sets map[string]*strSet
	// byIdx is the fast second level used by Check, keyed by the input
	// vector's ordinal in Check's deterministic enumeration. Sound
	// because the fingerprint pins everything the sequence depends on:
	// the parameter types (via the function text) and the source mode.
	byIdx []idxSet
}

type idxSet struct {
	set BehaviorSet
	ok  bool
	ref bool // clock reference bit, set on hit
}

type strSet struct {
	set BehaviorSet
	ref bool
}

// evictRef locates one admitted behaviour set for the clock sweep.
// ordinal < 0 means the string-keyed level addressed by key; otherwise
// byIdx[ordinal].
type evictRef struct {
	entry   *memoFuncEntry
	key     string
	ordinal int
}

// MemoSession is one goroutine's handle on a shared Memo. It carries
// the two-slot function-identity cache, which is the only part of the
// memo machinery that is not safe to share. Sessions are cheap; create
// one per worker (Check creates a private one when given a Memo
// without a Session).
type MemoSession struct {
	m        *Memo
	ident    [2]memoIdent
	identPos int
}

type memoIdent struct {
	fn    *ir.Func
	opts  memoOpts
	entry *memoFuncEntry
}

// memoOpts is the comparable fingerprint of everything besides the
// function and inputs that determines a behaviour set.
type memoOpts struct {
	opts       core.Options
	srcMode    core.Mode // governs Check's input enumeration
	maxChoices int
	maxFanout  uint64
	maxExecs   int
	fuel       int
}

// memoRef carries a resolved slot from lookup to store so the key work
// is not repeated on the put path. ordinal < 0 means the string-keyed
// level addressed by argsKey; otherwise byIdx[ordinal].
type memoRef struct {
	entry   *memoFuncEntry
	argsKey string
	ordinal int
}

// DefaultMemoEntries bounds a memo at roughly tens of MB for §6-sized
// functions.
const DefaultMemoEntries = 1 << 17

// NewMemo returns a memo holding at most max behaviour sets (0 means
// DefaultMemoEntries). When full, a clock sweep evicts cold sets to
// admit new ones.
func NewMemo(max int) *Memo {
	if max <= 0 {
		max = DefaultMemoEntries
	}
	m := &Memo{max: max}
	for i := range m.shards {
		m.shards[i].funcs = make(map[string]*memoFuncEntry)
	}
	return m
}

// NewSession returns a fresh session over m for use by one goroutine.
func (m *Memo) NewSession() *MemoSession { return &MemoSession{m: m} }

// Hits returns the number of lookups answered from the cache (summed
// over all sessions).
func (m *Memo) Hits() uint64 { return m.hits.Load() }

// Lookups returns the total number of lookups.
func (m *Memo) Lookups() uint64 { return m.lookups.Load() }

// Evictions returns the number of behaviour sets evicted by the clock.
func (m *Memo) Evictions() uint64 { return m.evictions.Load() }

// Len returns the number of cached behaviour sets (approximate while
// concurrent stores are in flight).
func (m *Memo) Len() int {
	m.ring.mu.Lock()
	defer m.ring.mu.Unlock()
	return len(m.ring.refs)
}

// funcEntry resolves the per-function cache level, through the
// session's identity cache when possible.
func (s *MemoSession) funcEntry(fn *ir.Func, mo memoOpts) *memoFuncEntry {
	for i := range s.ident {
		if s.ident[i].fn == fn && s.ident[i].opts == mo {
			return s.ident[i].entry
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%d|%d|%t|%d|%d|%d|%d|%d|%d\x00",
		mo.opts.Mode, mo.opts.BranchPoison, mo.opts.SelectPoisonCond,
		mo.opts.SelectArmPoisonEither, mo.opts.Fuel, mo.opts.MaxCallDepth,
		mo.maxChoices, mo.maxFanout, mo.maxExecs, mo.fuel)
	b.WriteString(fn.String())
	key := b.String()

	h := fnv.New32a()
	h.Write([]byte(key))
	sh := &s.m.shards[h.Sum32()%memoShardCount]
	sh.mu.Lock()
	entry := sh.funcs[key]
	if entry == nil {
		entry = &memoFuncEntry{shard: sh}
		sh.funcs[key] = entry
	}
	sh.mu.Unlock()

	s.ident[s.identPos] = memoIdent{fn: fn, opts: mo, entry: entry}
	s.identPos = (s.identPos + 1) % len(s.ident)
	return entry
}

func memoOptsOf(opts core.Options, cfg Config) memoOpts {
	return memoOpts{
		opts:       opts,
		srcMode:    cfg.SrcOpts.Mode,
		maxChoices: cfg.MaxChoices,
		maxFanout:  cfg.MaxFanout,
		maxExecs:   cfg.MaxExecs,
		fuel:       cfg.Fuel,
	}
}

func argsKey(args []core.Value) string {
	var b strings.Builder
	b.Grow(len(args) * 8)
	for _, a := range args {
		b.WriteString(a.Key())
		b.WriteByte('\x00')
	}
	return b.String()
}

// lookup resolves (fn, args, opts, cfg); ok reports a hit. The
// returned ref is passed to store to cache a freshly computed set.
// ordinal, when non-negative, is the input vector's position in
// Check's deterministic enumeration and selects the slice-indexed
// level, whose hot path does no string work at all; pass -1 when no
// such ordinal exists.
func (s *MemoSession) lookup(fn *ir.Func, args []core.Value, ordinal int, opts core.Options, cfg Config) (memoRef, BehaviorSet, bool) {
	s.m.lookups.Add(1)
	entry := s.funcEntry(fn, memoOptsOf(opts, cfg))
	sh := entry.shard
	if ordinal >= 0 {
		ref := memoRef{entry: entry, ordinal: ordinal}
		sh.mu.Lock()
		if ordinal < len(entry.byIdx) && entry.byIdx[ordinal].ok {
			entry.byIdx[ordinal].ref = true
			set := entry.byIdx[ordinal].set
			sh.mu.Unlock()
			s.m.hits.Add(1)
			return ref, set, true
		}
		sh.mu.Unlock()
		return ref, BehaviorSet{}, false
	}
	ref := memoRef{entry: entry, argsKey: argsKey(args), ordinal: -1}
	sh.mu.Lock()
	if e := entry.sets[ref.argsKey]; e != nil {
		e.ref = true
		set := e.set
		sh.mu.Unlock()
		s.m.hits.Add(1)
		return ref, set, true
	}
	sh.mu.Unlock()
	return ref, BehaviorSet{}, false
}

// store caches a computed set under a ref obtained from lookup.
func (s *MemoSession) store(ref memoRef, set BehaviorSet) {
	if set.Incomplete {
		return
	}
	sh := ref.entry.shard
	sh.mu.Lock()
	if ref.ordinal >= 0 {
		for len(ref.entry.byIdx) <= ref.ordinal {
			ref.entry.byIdx = append(ref.entry.byIdx, idxSet{})
		}
		if ref.entry.byIdx[ref.ordinal].ok {
			sh.mu.Unlock()
			return // another session raced the same computation
		}
		ref.entry.byIdx[ref.ordinal] = idxSet{set: set, ok: true}
	} else {
		if _, dup := ref.entry.sets[ref.argsKey]; dup {
			sh.mu.Unlock()
			return
		}
		if ref.entry.sets == nil {
			ref.entry.sets = make(map[string]*strSet)
		}
		ref.entry.sets[ref.argsKey] = &strSet{set: set}
	}
	sh.mu.Unlock()
	s.m.admit(evictRef{entry: ref.entry, key: ref.argsKey, ordinal: ref.ordinal})
}

// admit registers a freshly stored set with the clock, evicting a cold
// set first when the memo is at capacity. Lock order is strictly
// ring → shard; the insert path above holds only the shard lock, so
// the two cannot deadlock.
func (m *Memo) admit(r evictRef) {
	ring := &m.ring
	ring.mu.Lock()
	defer ring.mu.Unlock()
	if len(ring.refs) < m.max {
		ring.refs = append(ring.refs, r)
		return
	}
	// Second chance: clear reference bits until a cold victim appears.
	// Terminates within two laps — the first lap clears every bit.
	for {
		v := ring.refs[ring.hand]
		sh := v.entry.shard
		sh.mu.Lock()
		if v.entry.deref(v) {
			sh.mu.Unlock()
			ring.hand = (ring.hand + 1) % len(ring.refs)
			continue
		}
		v.entry.remove(v)
		sh.mu.Unlock()
		ring.refs[ring.hand] = r
		ring.hand = (ring.hand + 1) % len(ring.refs)
		m.evictions.Add(1)
		return
	}
}

// deref reports whether the referenced set was recently hit, clearing
// the reference bit. Caller holds the entry's shard lock.
func (e *memoFuncEntry) deref(v evictRef) bool {
	if v.ordinal >= 0 {
		if v.ordinal >= len(e.byIdx) || !e.byIdx[v.ordinal].ref {
			return false
		}
		e.byIdx[v.ordinal].ref = false
		return true
	}
	s := e.sets[v.key]
	if s == nil || !s.ref {
		return false
	}
	s.ref = false
	return true
}

// remove drops the referenced set. Caller holds the entry's shard lock.
func (e *memoFuncEntry) remove(v evictRef) {
	if v.ordinal >= 0 {
		if v.ordinal < len(e.byIdx) {
			e.byIdx[v.ordinal] = idxSet{}
		}
		return
	}
	delete(e.sets, v.key)
}
