package refine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"tameir/internal/cache"
	"tameir/internal/core"
	"tameir/internal/ir"
)

// Memo caches behaviour sets across refinement checks, keyed by the
// canonical (function, semantics, input vector) triple.
//
// Exhaustive campaigns are dominated by structurally identical work:
// most candidates pass through an optimizer unchanged or collapse to
// one of a few small forms, so the same behaviour sets are re-derived
// over and over. The memo turns those derivations into lookups.
//
// The cache is two-level so the hot path never touches the expensive
// part of the key. The first level maps the canonical function text
// (plus a semantics/bounds fingerprint) to a per-function entry; a
// per-session two-slot identity cache — two slots because Check
// alternates between src and tgt on every input — resolves repeat
// (function, options) pairs by pointer comparison, so the function is
// printed once per Check side, not once per input. The second level
// maps the input vector's short key (or its ordinal in Check's
// deterministic input enumeration) to its behaviour set.
//
// Keys are full canonical strings, not hashes, so a hit can never be a
// collision: a memoized verdict is always the verdict the engine would
// have produced (see TestMemoNeverChangesVerdict). Entries whose sets
// are Incomplete are not cached — they depend on enumeration bounds in
// a way that is cheap to just redo. The identity cache assumes
// functions are not mutated between checks that share a Memo; the
// pipeline upholds this by checking sources it never mutates and
// transforming private clones.
//
// A Memo IS safe for concurrent use: the function table is a
// cache.StringMap split over memoShardCount lock stripes and the
// counters are atomic, so one memo can back every worker of a campaign
// and hits cross worker shards. Each goroutine must drive it through
// its own MemoSession (NewSession), which holds the only unshared
// state — the identity cache. Bounded residency is a cache.Clock
// (second-chance) sweep that evicts cold behaviour sets to admit new
// ones, so long campaigns keep a warm working set; an eviction can
// cost a recomputation but never changes a verdict
// (TestMemoEvictionKeepsVerdicts).
//
// A memo can also be snapshotted to disk and reloaded by a later
// process (Snapshot/LoadSnapshot in memosnap.go); entries that arrived
// from a snapshot keep a provenance bit so warm-start hits are
// countable as cache_disk_hits_total.
type Memo struct {
	funcs *cache.StringMap[*memoFuncEntry]
	clock *cache.Clock[evictRef]

	hits, lookups, diskHits atomic.Uint64
}

// memoShardCount is the lock-striping factor. 64 keeps contention
// negligible at any plausible worker count while costing one FNV hash
// per per-function entry resolution (once per Check side, thanks to
// the session identity cache).
const memoShardCount = 64

type memoFuncEntry struct {
	mu *sync.Mutex // home stripe lock; guards all mutable state below
	// sets is the generic second level, keyed by input-vector text.
	sets map[string]*strSet
	// byIdx is the fast second level used by Check, keyed by the input
	// vector's ordinal in Check's deterministic enumeration. Sound
	// because the fingerprint pins everything the sequence depends on:
	// the parameter types (via the function text) and the source mode.
	byIdx []idxSet
}

type idxSet struct {
	set  BehaviorSet
	ok   bool
	ref  bool // clock reference bit, set on hit
	disk bool // loaded from a -cache-dir snapshot
}

type strSet struct {
	set  BehaviorSet
	ref  bool
	disk bool
}

// evictRef locates one admitted behaviour set for the clock sweep.
// ordinal < 0 means the string-keyed level addressed by key; otherwise
// byIdx[ordinal].
type evictRef struct {
	entry   *memoFuncEntry
	key     string
	ordinal int
}

// MemoSession is one goroutine's handle on a shared Memo. It carries
// the two-slot function-identity cache, which is the only part of the
// memo machinery that is not safe to share. Sessions are cheap; create
// one per worker (Check creates a private one when given a Memo
// without a Session).
type MemoSession struct {
	m        *Memo
	ident    [2]memoIdent
	identPos int
}

type memoIdent struct {
	fn    *ir.Func
	opts  memoOpts
	entry *memoFuncEntry
}

// memoOpts is the comparable fingerprint of everything besides the
// function and inputs that determines a behaviour set.
type memoOpts struct {
	opts       core.Options
	srcMode    core.Mode // governs Check's input enumeration
	inputBits  uint      // ditto: the exhaustive-enumeration cutoff
	maxChoices int
	maxFanout  uint64
	maxExecs   int
	fuel       int
}

// memoRef carries a resolved slot from lookup to store so the key work
// is not repeated on the put path. ordinal < 0 means the string-keyed
// level addressed by argsKey; otherwise byIdx[ordinal].
type memoRef struct {
	entry   *memoFuncEntry
	argsKey string
	ordinal int
}

// DefaultMemoEntries bounds a memo at roughly tens of MB for §6-sized
// functions.
const DefaultMemoEntries = 1 << 17

// NewMemo returns a memo holding at most max behaviour sets (0 means
// DefaultMemoEntries). When full, a clock sweep evicts cold sets to
// admit new ones.
func NewMemo(max int) *Memo {
	if max <= 0 {
		max = DefaultMemoEntries
	}
	return &Memo{
		funcs: cache.NewStringMap[*memoFuncEntry](memoShardCount),
		clock: cache.NewClock[evictRef](max),
	}
}

// NewSession returns a fresh session over m for use by one goroutine.
func (m *Memo) NewSession() *MemoSession { return &MemoSession{m: m} }

// Hits returns the number of lookups answered from the cache (summed
// over all sessions).
func (m *Memo) Hits() uint64 { return m.hits.Load() }

// Lookups returns the total number of lookups.
func (m *Memo) Lookups() uint64 { return m.lookups.Load() }

// Evictions returns the number of behaviour sets evicted by the clock.
func (m *Memo) Evictions() uint64 { return m.clock.Evictions() }

// DiskHits returns the number of hits served by entries that arrived
// from a -cache-dir snapshot rather than this process's own work.
func (m *Memo) DiskHits() uint64 { return m.diskHits.Load() }

// Len returns the number of cached behaviour sets (approximate while
// concurrent stores are in flight).
func (m *Memo) Len() int { return m.clock.Len() }

// entryFor resolves the per-function entry for a fully rendered key,
// creating it on first use. The constructor keeps the stripe mutex as
// the entry's guard.
func (m *Memo) entryFor(key string) *memoFuncEntry {
	return m.funcs.GetOrCreate(key, func(mu *sync.Mutex) *memoFuncEntry {
		return &memoFuncEntry{mu: mu}
	})
}

// funcEntry resolves the per-function cache level, through the
// session's identity cache when possible.
func (s *MemoSession) funcEntry(fn *ir.Func, mo memoOpts) *memoFuncEntry {
	for i := range s.ident {
		if s.ident[i].fn == fn && s.ident[i].opts == mo {
			return s.ident[i].entry
		}
	}
	entry := s.m.entryFor(memoFuncKey(fn, mo))
	s.ident[s.identPos] = memoIdent{fn: fn, opts: mo, entry: entry}
	s.identPos = (s.identPos + 1) % len(s.ident)
	return entry
}

// memoFuncKey renders the first-level key: the semantics/bounds
// fingerprint followed by the canonical function text. Everything the
// behaviour set (and Check's ordinal enumeration) depends on is in
// here, which is also what makes the key stable across processes —
// the property the snapshot layer rides on.
func memoFuncKey(fn *ir.Func, mo memoOpts) string {
	var b strings.Builder
	// srcMode and inputBits must be part of the rendered key, not just
	// the identity-cache struct: they steer Check's input enumeration,
	// so the byIdx ordinal space is only stable within one
	// (srcMode, inputBits) regime.
	fmt.Fprintf(&b, "%d|%d|%d|%t|%d|%d|%d|%d|%d|%d|%d|%d\x00",
		mo.opts.Mode, mo.opts.BranchPoison, mo.opts.SelectPoisonCond,
		mo.opts.SelectArmPoisonEither, mo.opts.Fuel, mo.opts.MaxCallDepth,
		mo.srcMode, mo.inputBits,
		mo.maxChoices, mo.maxFanout, mo.maxExecs, mo.fuel)
	b.WriteString(fn.String())
	return b.String()
}

func memoOptsOf(opts core.Options, cfg Config) memoOpts {
	return memoOpts{
		opts:       opts,
		srcMode:    cfg.SrcOpts.Mode,
		inputBits:  cfg.ExhaustiveInputBits,
		maxChoices: cfg.MaxChoices,
		maxFanout:  cfg.MaxFanout,
		maxExecs:   cfg.MaxExecs,
		fuel:       cfg.Fuel,
	}
}

func argsKey(args []core.Value) string {
	var b strings.Builder
	b.Grow(len(args) * 8)
	for _, a := range args {
		b.WriteString(a.Key())
		b.WriteByte('\x00')
	}
	return b.String()
}

// lookup resolves (fn, args, opts, cfg); ok reports a hit. The
// returned ref is passed to store to cache a freshly computed set.
// ordinal, when non-negative, is the input vector's position in
// Check's deterministic enumeration and selects the slice-indexed
// level, whose hot path does no string work at all; pass -1 when no
// such ordinal exists.
func (s *MemoSession) lookup(fn *ir.Func, args []core.Value, ordinal int, opts core.Options, cfg Config) (memoRef, BehaviorSet, bool) {
	s.m.lookups.Add(1)
	entry := s.funcEntry(fn, memoOptsOf(opts, cfg))
	if ordinal >= 0 {
		ref := memoRef{entry: entry, ordinal: ordinal}
		entry.mu.Lock()
		if ordinal < len(entry.byIdx) && entry.byIdx[ordinal].ok {
			entry.byIdx[ordinal].ref = true
			set := entry.byIdx[ordinal].set
			disk := entry.byIdx[ordinal].disk
			entry.mu.Unlock()
			s.m.hits.Add(1)
			if disk {
				s.m.diskHits.Add(1)
			}
			return ref, set, true
		}
		entry.mu.Unlock()
		return ref, BehaviorSet{}, false
	}
	ref := memoRef{entry: entry, argsKey: argsKey(args), ordinal: -1}
	entry.mu.Lock()
	if e := entry.sets[ref.argsKey]; e != nil {
		e.ref = true
		set := e.set
		disk := e.disk
		entry.mu.Unlock()
		s.m.hits.Add(1)
		if disk {
			s.m.diskHits.Add(1)
		}
		return ref, set, true
	}
	entry.mu.Unlock()
	return ref, BehaviorSet{}, false
}

// store caches a computed set under a ref obtained from lookup.
func (s *MemoSession) store(ref memoRef, set BehaviorSet) {
	if set.Incomplete {
		return
	}
	e := ref.entry
	e.mu.Lock()
	if ref.ordinal >= 0 {
		for len(e.byIdx) <= ref.ordinal {
			e.byIdx = append(e.byIdx, idxSet{})
		}
		if e.byIdx[ref.ordinal].ok {
			e.mu.Unlock()
			return // another session raced the same computation
		}
		e.byIdx[ref.ordinal] = idxSet{set: set, ok: true}
	} else {
		if _, dup := e.sets[ref.argsKey]; dup {
			e.mu.Unlock()
			return
		}
		if e.sets == nil {
			e.sets = make(map[string]*strSet)
		}
		e.sets[ref.argsKey] = &strSet{set: set}
	}
	e.mu.Unlock()
	s.m.admit(evictRef{entry: ref.entry, key: ref.argsKey, ordinal: ref.ordinal})
}

// admit registers a freshly stored set with the clock, evicting a cold
// set first when the memo is at capacity. Lock order is strictly
// ring → stripe; the insert path above holds only the stripe lock, so
// the two cannot deadlock.
func (m *Memo) admit(r evictRef) {
	m.clock.Admit(r,
		func(v evictRef) bool {
			v.entry.mu.Lock()
			defer v.entry.mu.Unlock()
			return v.entry.deref(v)
		},
		func(v evictRef) {
			v.entry.mu.Lock()
			defer v.entry.mu.Unlock()
			v.entry.remove(v)
		})
}

// deref reports whether the referenced set was recently hit, clearing
// the reference bit. Caller holds the entry's stripe lock.
func (e *memoFuncEntry) deref(v evictRef) bool {
	if v.ordinal >= 0 {
		if v.ordinal >= len(e.byIdx) || !e.byIdx[v.ordinal].ref {
			return false
		}
		e.byIdx[v.ordinal].ref = false
		return true
	}
	s := e.sets[v.key]
	if s == nil || !s.ref {
		return false
	}
	s.ref = false
	return true
}

// remove drops the referenced set. Caller holds the entry's stripe
// lock.
func (e *memoFuncEntry) remove(v evictRef) {
	if v.ordinal >= 0 {
		if v.ordinal < len(e.byIdx) {
			e.byIdx[v.ordinal] = idxSet{}
		}
		return
	}
	delete(e.sets, v.key)
}
