package refine

import (
	"fmt"
	"strings"

	"tameir/internal/core"
	"tameir/internal/ir"
)

// Memo caches behaviour sets across refinement checks, keyed by the
// canonical (function, semantics, input vector) triple.
//
// Exhaustive campaigns are dominated by structurally identical work:
// most candidates pass through an optimizer unchanged or collapse to
// one of a few small forms, so the same behaviour sets are re-derived
// over and over. The memo turns those derivations into lookups.
//
// The cache is two-level so the hot path never touches the expensive
// part of the key. The first level maps the canonical function text
// (plus a semantics/bounds fingerprint) to a per-function entry; a
// two-slot identity cache — two slots because Check alternates between
// src and tgt on every input — resolves repeat (function, options)
// pairs by pointer comparison, so the function is printed once per
// Check side, not once per input. The second level maps the input
// vector's short key to its behaviour set.
//
// Keys are full canonical strings, not hashes, so a hit can never be a
// collision: a memoized verdict is always the verdict the interpreter
// would have produced (see TestMemoNeverChangesVerdict). Entries whose
// sets are Incomplete are not cached — they depend on enumeration
// bounds in a way that is cheap to just redo. The identity cache
// assumes functions are not mutated between checks that share a Memo;
// the pipeline upholds this by checking sources it never mutates and
// transforming private clones.
//
// A Memo is NOT safe for concurrent use. The pipeline gives each
// worker shard its own Memo, which both avoids locking and keeps
// hit-rate statistics deterministic for a fixed shard layout.
type Memo struct {
	funcs map[string]*memoFuncEntry
	sets  int // total cached behaviour sets, bounded by max
	max   int

	hits, lookups uint64

	// ident is the two-slot identity cache; identPos is the next slot
	// to evict (round-robin).
	ident    [2]memoIdent
	identPos int
}

type memoFuncEntry struct {
	// sets is the generic second level, keyed by input-vector text.
	sets map[string]BehaviorSet
	// byIdx is the fast second level used by Check, keyed by the input
	// vector's ordinal in Check's deterministic enumeration. Sound
	// because the fingerprint pins everything the sequence depends on:
	// the parameter types (via the function text) and the source mode.
	byIdx []idxSet
}

type idxSet struct {
	set BehaviorSet
	ok  bool
}

type memoIdent struct {
	fn    *ir.Func
	opts  memoOpts
	entry *memoFuncEntry
}

// memoOpts is the comparable fingerprint of everything besides the
// function and inputs that determines a behaviour set.
type memoOpts struct {
	opts       core.Options
	srcMode    core.Mode // governs Check's input enumeration
	maxChoices int
	maxFanout  uint64
	maxExecs   int
	fuel       int
}

// memoRef carries a resolved slot from lookup to store so the key work
// is not repeated on the put path. ordinal < 0 means the string-keyed
// level addressed by argsKey; otherwise byIdx[ordinal].
type memoRef struct {
	entry   *memoFuncEntry
	argsKey string
	ordinal int
}

// DefaultMemoEntries bounds a memo at roughly tens of MB for §6-sized
// functions.
const DefaultMemoEntries = 1 << 17

// NewMemo returns a memo holding at most max behaviour sets (0 means
// DefaultMemoEntries). When full it stops admitting new entries;
// existing entries keep hitting.
func NewMemo(max int) *Memo {
	if max <= 0 {
		max = DefaultMemoEntries
	}
	return &Memo{funcs: make(map[string]*memoFuncEntry), max: max}
}

// Hits returns the number of lookups answered from the cache.
func (m *Memo) Hits() uint64 { return m.hits }

// Lookups returns the total number of lookups.
func (m *Memo) Lookups() uint64 { return m.lookups }

// Len returns the number of cached behaviour sets.
func (m *Memo) Len() int { return m.sets }

// funcEntry resolves the per-function cache level, through the
// identity cache when possible.
func (m *Memo) funcEntry(fn *ir.Func, mo memoOpts) *memoFuncEntry {
	for i := range m.ident {
		if m.ident[i].fn == fn && m.ident[i].opts == mo {
			return m.ident[i].entry
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%d|%d|%t|%d|%d|%d|%d|%d|%d\x00",
		mo.opts.Mode, mo.opts.BranchPoison, mo.opts.SelectPoisonCond,
		mo.opts.SelectArmPoisonEither, mo.opts.Fuel, mo.opts.MaxCallDepth,
		mo.maxChoices, mo.maxFanout, mo.maxExecs, mo.fuel)
	b.WriteString(fn.String())
	key := b.String()
	entry := m.funcs[key]
	if entry == nil {
		entry = &memoFuncEntry{}
		m.funcs[key] = entry
	}
	m.ident[m.identPos] = memoIdent{fn: fn, opts: mo, entry: entry}
	m.identPos = (m.identPos + 1) % len(m.ident)
	return entry
}

func memoOptsOf(opts core.Options, cfg Config) memoOpts {
	return memoOpts{
		opts:       opts,
		srcMode:    cfg.SrcOpts.Mode,
		maxChoices: cfg.MaxChoices,
		maxFanout:  cfg.MaxFanout,
		maxExecs:   cfg.MaxExecs,
		fuel:       cfg.Fuel,
	}
}

func argsKey(args []core.Value) string {
	var b strings.Builder
	b.Grow(len(args) * 8)
	for _, a := range args {
		b.WriteString(a.Key())
		b.WriteByte('\x00')
	}
	return b.String()
}

// lookup resolves (fn, args, opts, cfg); ok reports a hit. The
// returned ref is passed to store to cache a freshly computed set.
// ordinal, when non-negative, is the input vector's position in
// Check's deterministic enumeration and selects the slice-indexed
// level, whose hot path does no string work at all; pass -1 when no
// such ordinal exists.
func (m *Memo) lookup(fn *ir.Func, args []core.Value, ordinal int, opts core.Options, cfg Config) (memoRef, BehaviorSet, bool) {
	m.lookups++
	entry := m.funcEntry(fn, memoOptsOf(opts, cfg))
	if ordinal >= 0 {
		ref := memoRef{entry: entry, ordinal: ordinal}
		if ordinal < len(entry.byIdx) && entry.byIdx[ordinal].ok {
			m.hits++
			return ref, entry.byIdx[ordinal].set, true
		}
		return ref, BehaviorSet{}, false
	}
	ref := memoRef{entry: entry, argsKey: argsKey(args), ordinal: -1}
	set, ok := entry.sets[ref.argsKey]
	if ok {
		m.hits++
	}
	return ref, set, ok
}

// store caches a computed set under a ref obtained from lookup.
func (m *Memo) store(ref memoRef, set BehaviorSet) {
	if set.Incomplete || m.sets >= m.max {
		return
	}
	if ref.ordinal >= 0 {
		for len(ref.entry.byIdx) <= ref.ordinal {
			ref.entry.byIdx = append(ref.entry.byIdx, idxSet{})
		}
		if ref.entry.byIdx[ref.ordinal].ok {
			return
		}
		ref.entry.byIdx[ref.ordinal] = idxSet{set: set, ok: true}
		m.sets++
		return
	}
	if _, dup := ref.entry.sets[ref.argsKey]; dup {
		return
	}
	if ref.entry.sets == nil {
		ref.entry.sets = make(map[string]BehaviorSet)
	}
	ref.entry.sets[ref.argsKey] = set
	m.sets++
}
