package optfuzz

import (
	"fmt"
	"math/rand"

	"tameir/internal/analysis"
	"tameir/internal/ir"
)

// Coverage-guided CFG mutation fuzzing. Exhaustive enumeration covers
// every straight-line function of a fixed shape; mutation reaches the
// programs that shape excludes — branches, loops, phi merges, grown
// operand webs. The source evolves in epochs: epoch 0 is a seed
// corpus (exhaustive prefix plus any caller-provided functions), and
// each later epoch mutates the corpus members that showed something
// new — a refuted verdict, a pass combination, or a behaviour-set
// digest not seen before.
//
// Everything is deterministic by construction. Candidate i of epoch e
// is produced by an rng seeded with splitmix64(Seed, e, i) from a
// parent chosen by i's position alone; corpus admission replays the
// campaign's feedback in (shard, index) order; and the campaign only
// advances the source at epoch barriers. The same Seed therefore
// yields the same candidates, findings and corpus for every worker
// count — the property the CI determinism gate (workers 2 vs 8)
// checks.

// MutationConfig configures a MutationSource.
type MutationConfig struct {
	// Seed is the campaign RNG seed; every mutation derives from it.
	Seed int64
	// Gen shapes the seed corpus and the value universe: its Width is
	// the integer width mutants compute in, its opcode menu is the
	// instruction set mutations draw from, and its first SeedFuncs
	// exhaustive candidates become epoch 0.
	Gen Config
	// Mode is the IR dialect mutants must verify under (VerifyLegacy
	// admits undef constants inherited from legacy seeds).
	Mode ir.VerifyMode
	// SeedFuncs bounds the exhaustive prefix seeding epoch 0 (default
	// 64).
	SeedFuncs int
	// Seeds are extra seed functions (e.g. a corpus loaded from a
	// previous run); they precede the exhaustive prefix in epoch 0.
	Seeds []*ir.Func
	// Epochs is the total number of epochs including the seed epoch
	// (default 4).
	Epochs int
	// PerEpoch is how many mutants each post-seed epoch checks
	// (default 256).
	PerEpoch int
	// Shards splits each epoch's candidate list for the worker pool
	// (default 8). Purely a parallelism knob: the candidate list is
	// fixed before the epoch runs, so the shard count never changes
	// what is checked.
	Shards int
	// MaxCorpus bounds the corpus FIFO (default 128).
	MaxCorpus int
	// MaxBlocks / MaxInstrs cap mutant growth (defaults 6 and 24).
	MaxBlocks int
	MaxInstrs int
	// Steps is how many mutations each mutant applies to its parent
	// (default 3; steps that fail the verifier are skipped, not
	// retried).
	Steps int
}

// DefaultMutationConfig returns the standard mutation campaign shape
// over the §6 generator defaults.
func DefaultMutationConfig(seed int64) MutationConfig {
	return MutationConfig{Seed: seed, Gen: DefaultConfig(3)}
}

// MutationSource is the coverage-guided Evolving workload.
type MutationSource struct {
	cfg MutationConfig
	ty  ir.Type

	tasks  []*ir.Func // current epoch's candidates, global order
	starts []int      // shard i covers tasks[starts[i]:starts[i+1]]

	corpus   []*ir.Func
	coverage map[string]struct{}
}

// NewMutationSource builds the source and its epoch-0 seed tasks.
func NewMutationSource(cfg MutationConfig) *MutationSource {
	if cfg.SeedFuncs <= 0 {
		cfg.SeedFuncs = 64
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 4
	}
	if cfg.PerEpoch <= 0 {
		cfg.PerEpoch = 256
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.MaxCorpus <= 0 {
		cfg.MaxCorpus = 128
	}
	if cfg.MaxBlocks <= 0 {
		cfg.MaxBlocks = 6
	}
	if cfg.MaxInstrs <= 0 {
		cfg.MaxInstrs = 24
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 3
	}
	if cfg.Gen.Width == 0 {
		cfg.Gen = DefaultConfig(3)
	}
	s := &MutationSource{
		cfg:      cfg,
		ty:       ir.Int(cfg.Gen.Width),
		coverage: make(map[string]struct{}),
	}
	var seeds []*ir.Func
	for _, f := range cfg.Seeds {
		seeds = append(seeds, ir.CloneFunc(f))
	}
	gen := cfg.Gen
	gen.MaxFuncs = cfg.SeedFuncs
	Exhaustive(gen, func(f *ir.Func) bool {
		seeds = append(seeds, f)
		return true
	})
	s.setTasks(seeds)
	return s
}

func (s *MutationSource) setTasks(tasks []*ir.Func) {
	s.tasks = tasks
	n := s.cfg.Shards
	s.starts = make([]int, n+1)
	for i := 0; i <= n; i++ {
		s.starts[i] = i * len(tasks) / n
	}
}

// Name implements Source.
func (s *MutationSource) Name() string { return "mutate" }

// Shards implements Source.
func (s *MutationSource) Shards() int { return s.cfg.Shards }

// Budget implements Source: epochs are sized by PerEpoch, not by a
// campaign-wide candidate budget.
func (s *MutationSource) Budget() int { return 0 }

// Capacities implements Source.
func (s *MutationSource) Capacities(limit int) []int { return nil }

// Enumerate implements Source: shard i streams its contiguous slice of
// the epoch's candidate list.
func (s *MutationSource) Enumerate(shard, max int, emit func(*ir.Func) bool) (int, bool) {
	lo, hi := s.starts[shard], s.starts[shard+1]
	n := 0
	for _, f := range s.tasks[lo:hi] {
		if max > 0 && n >= max {
			return n, true
		}
		n++
		if !emit(f) {
			return n, true
		}
	}
	return n, false
}

// Epochs implements Evolving.
func (s *MutationSource) Epochs() int { return s.cfg.Epochs }

// coverageKey renders what made a candidate interesting: its
// behaviour-set digest, its verdict, and the set of passes that fired
// on it. Two candidates with equal keys exercised the pipeline the
// same way.
func coverageKey(f Feedback) string {
	key := fmt.Sprintf("%016x|%t|%t", f.Behavior, f.Refuted, f.Inconclusive)
	for _, c := range f.ChangedBy {
		key += "|" + c
	}
	return key
}

// Advance implements Evolving: admit this epoch's interesting
// candidates into the corpus, then breed the next epoch's mutants.
func (s *MutationSource) Advance(epoch int, fb []Feedback) {
	for _, f := range fb {
		key := coverageKey(f)
		_, seen := s.coverage[key]
		if !seen {
			s.coverage[key] = struct{}{}
		}
		if f.Refuted || !seen {
			s.corpus = append(s.corpus, s.tasks[s.starts[f.Shard]+f.Index])
			if len(s.corpus) > s.cfg.MaxCorpus {
				s.corpus = s.corpus[1:] // FIFO: retire the oldest
			}
		}
	}
	if epoch+1 >= s.cfg.Epochs {
		return
	}
	parents := s.corpus
	if len(parents) == 0 {
		parents = s.tasks // degenerate epoch: re-mutate the seeds
	}
	next := make([]*ir.Func, s.cfg.PerEpoch)
	for i := range next {
		rng := rand.New(rand.NewSource(int64(splitmix64(uint64(s.cfg.Seed), uint64(epoch+1), uint64(i)))))
		next[i] = s.mutate(parents[i%len(parents)], rng)
	}
	s.setTasks(next)
}

// Corpus returns the current corpus functions (for -corpus saving).
func (s *MutationSource) Corpus() []*ir.Func { return s.corpus }

// CorpusStats implements CorpusReporter.
func (s *MutationSource) CorpusStats() CorpusStats {
	return CorpusStats{Size: len(s.corpus), Coverage: len(s.coverage)}
}

// splitmix64 mixes (seed, epoch, index) into an rng stream seed, so
// every mutant draws from an independent deterministic stream no
// matter how candidates are resliced across shards.
func splitmix64(vals ...uint64) uint64 {
	x := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		x ^= v + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		x = z ^ (z >> 31)
	}
	return x
}

// mutate derives one mutant: Steps random edits, each kept only when
// the result passes the dialect verifier, SSA dominance checking, and
// the growth caps. Failed steps are skipped (the rng advances
// identically either way, preserving determinism).
func (s *MutationSource) mutate(parent *ir.Func, rng *rand.Rand) *ir.Func {
	cand := ir.CloneFunc(parent)
	for step := 0; step < s.cfg.Steps; step++ {
		next := ir.CloneFunc(cand)
		if !s.applyMutator(next, rng) {
			continue
		}
		if len(next.Blocks) > s.cfg.MaxBlocks || next.NumInstrs() > s.cfg.MaxInstrs {
			continue
		}
		if ir.Verify(next, s.cfg.Mode) != nil || analysis.VerifySSA(next) != nil {
			continue
		}
		cand = next
	}
	return cand
}

// consts returns the small constant pool for ty.
func (s *MutationSource) consts(ty ir.Type) []ir.Value {
	max := uint64(1) << ty.Bits
	if max > 4 {
		max = 4
	}
	var vs []ir.Value
	for v := uint64(0); v < max; v++ {
		vs = append(vs, ir.ConstInt(ty, v))
	}
	vs = append(vs, ir.ConstInt(ty, ir.TruncBits(^uint64(0), ty.Bits)))
	return vs
}

// valuesAt returns values of type ty that dominate position (b, idx):
// parameters, constants, b's own defs before idx, and — when b is not
// the entry block — every entry-block def (the entry dominates all
// reachable blocks). Always non-empty for integer ty.
func valuesAt(f *ir.Func, b *ir.Block, idx int, ty ir.Type, consts []ir.Value) []ir.Value {
	var vs []ir.Value
	for _, p := range f.Params {
		if p.Ty.Equal(ty) {
			vs = append(vs, p)
		}
	}
	for _, c := range consts {
		if c.Type().Equal(ty) {
			vs = append(vs, c)
		}
	}
	entry := f.Entry()
	if b != entry {
		for _, in := range entry.Instrs() {
			if !in.Op.IsTerminator() && in.Ty.Equal(ty) {
				vs = append(vs, in)
			}
		}
	}
	for i, in := range b.Instrs() {
		if i >= idx {
			break
		}
		if !in.Op.IsTerminator() && in.Ty.Equal(ty) {
			vs = append(vs, in)
		}
	}
	return vs
}

func pickVal(rng *rand.Rand, vs []ir.Value) ir.Value {
	return vs[rng.Intn(len(vs))]
}

// applyMutator applies one randomly chosen structural edit in place,
// reporting whether anything changed. Every edit keeps dominance by
// construction — operands are drawn from valuesAt — but the caller
// still re-verifies, so a buggy mutator step degrades to a no-op
// rather than a corrupt candidate.
func (s *MutationSource) applyMutator(f *ir.Func, rng *rand.Rand) bool {
	switch rng.Intn(8) {
	case 0, 1: // weighted: growing the dataflow web is the bread and butter
		return s.addInstr(f, rng)
	case 2:
		return s.replaceOperand(f, rng)
	case 3:
		return s.tweakPred(f, rng)
	case 4:
		return s.toggleAttr(f, rng)
	case 5:
		return s.splitDiamond(f, rng)
	case 6:
		return s.addLoop(f, rng)
	case 7:
		return s.deleteOne(f, rng)
	}
	return false
}

// addInstr inserts one new instruction at a random program point and,
// half the time, rewires a later same-block operand onto it so the new
// value is live.
func (s *MutationSource) addInstr(f *ir.Func, rng *rand.Rand) bool {
	b := f.Blocks[rng.Intn(len(f.Blocks))]
	instrs := b.Instrs()
	if b.Terminator() == nil {
		return false
	}
	lo := len(b.Phis())
	hi := len(instrs) - 1 // insert at worst right before the terminator
	idx := lo + rng.Intn(hi-lo+1)
	cpool := s.consts(s.ty)
	vals := valuesAt(f, b, idx, s.ty, cpool)
	if len(vals) == 0 {
		return false
	}
	ops := s.cfg.Gen.opcodes()
	op := ops[rng.Intn(len(ops))]
	var in *ir.Instr
	switch op {
	case ir.OpICmp:
		in = ir.NewInstr(ir.OpICmp, ir.I1, pickVal(rng, vals), pickVal(rng, vals))
		in.Pred = ir.Pred(rng.Intn(10))
	case ir.OpSelect:
		conds := valuesAt(f, b, idx, ir.I1, s.consts(ir.I1))
		if len(conds) == 0 {
			return false
		}
		in = ir.NewInstr(ir.OpSelect, s.ty, pickVal(rng, conds), pickVal(rng, vals), pickVal(rng, vals))
	case ir.OpFreeze:
		in = ir.NewInstr(ir.OpFreeze, s.ty, pickVal(rng, vals))
	default:
		in = ir.NewInstr(op, s.ty, pickVal(rng, vals), pickVal(rng, vals))
		switch op {
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpShl:
			if rng.Intn(3) == 0 {
				in.Attrs = ir.NSW
			} else if rng.Intn(3) == 0 {
				in.Attrs = ir.NUW
			}
		case ir.OpUDiv, ir.OpSDiv, ir.OpLShr, ir.OpAShr:
			if rng.Intn(4) == 0 {
				in.Attrs = ir.Exact
			}
		}
	}
	in.Nam = f.GenName("m")
	b.InsertBefore(in, instrs[idx])
	if rng.Intn(2) == 0 {
		// Rewire one later same-block operand of matching type onto the
		// new value (the new def dominates everything after idx in b).
		after := b.Instrs()
		for _, cand := range after[idx+1:] {
			if cand.Op == ir.OpPhi {
				continue
			}
			for ai := 0; ai < cand.NumArgs(); ai++ {
				if cand.Arg(ai).Type().Equal(in.Ty) && rng.Intn(2) == 0 {
					cand.SetArg(ai, in)
					return true
				}
			}
		}
	}
	return true
}

// replaceOperand swaps one operand for another dominance-safe value of
// the same type. Phi incomings are restricted to parameters and
// constants (a phi's operand must dominate the incoming edge, not the
// phi itself, so block-local reasoning does not apply).
func (s *MutationSource) replaceOperand(f *ir.Func, rng *rand.Rand) bool {
	type slot struct {
		in  *ir.Instr
		arg int
	}
	var slots []slot
	for _, b := range f.Blocks {
		for _, in := range b.Instrs() {
			for ai := 0; ai < in.NumArgs(); ai++ {
				if in.Arg(ai).Type().IsInt() {
					slots = append(slots, slot{in, ai})
				}
			}
		}
	}
	if len(slots) == 0 {
		return false
	}
	sl := slots[rng.Intn(len(slots))]
	ty := sl.in.Arg(sl.arg).Type()
	var pool []ir.Value
	if sl.in.Op == ir.OpPhi {
		for _, p := range f.Params {
			if p.Ty.Equal(ty) {
				pool = append(pool, p)
			}
		}
		pool = append(pool, s.consts(ty)...)
	} else {
		b := sl.in.Parent()
		idx := 0
		for i, in := range b.Instrs() {
			if in == sl.in {
				idx = i
				break
			}
		}
		pool = valuesAt(f, b, idx, ty, s.consts(ty))
	}
	if len(pool) == 0 {
		return false
	}
	nv := pickVal(rng, pool)
	if nv == sl.in.Arg(sl.arg) {
		return false
	}
	sl.in.SetArg(sl.arg, nv)
	return true
}

// tweakPred rewrites one icmp's predicate.
func (s *MutationSource) tweakPred(f *ir.Func, rng *rand.Rand) bool {
	var cmps []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs() {
			if in.Op == ir.OpICmp {
				cmps = append(cmps, in)
			}
		}
	}
	if len(cmps) == 0 {
		return false
	}
	in := cmps[rng.Intn(len(cmps))]
	np := ir.Pred(rng.Intn(10))
	if np == in.Pred {
		return false
	}
	in.Pred = np
	return true
}

// toggleAttr flips a poison-generating attribute on one arithmetic
// instruction — the cheapest way to move a candidate across the
// poison/no-poison boundary the paper's semantics is about.
func (s *MutationSource) toggleAttr(f *ir.Func, rng *rand.Rand) bool {
	type slot struct {
		in *ir.Instr
		a  ir.Attrs
	}
	var slots []slot
	for _, b := range f.Blocks {
		for _, in := range b.Instrs() {
			switch in.Op {
			case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpShl:
				slots = append(slots, slot{in, ir.NSW}, slot{in, ir.NUW})
			case ir.OpUDiv, ir.OpSDiv, ir.OpLShr, ir.OpAShr:
				slots = append(slots, slot{in, ir.Exact})
			}
		}
	}
	if len(slots) == 0 {
		return false
	}
	sl := slots[rng.Intn(len(slots))]
	sl.in.Attrs ^= sl.a
	return true
}

// splitDiamond rewrites one returning block into an if/else diamond
// with a phi merge: `ret x` becomes a conditional branch to two fresh
// arms joining in a phi over x and another dominating value.
func (s *MutationSource) splitDiamond(f *ir.Func, rng *rand.Rand) bool {
	var rets []*ir.Block
	for _, b := range f.Blocks {
		if t := b.Terminator(); t != nil && t.Op == ir.OpRet && t.NumArgs() == 1 && t.Arg(0).Type().Equal(s.ty) {
			rets = append(rets, b)
		}
	}
	if len(rets) == 0 {
		return false
	}
	b := rets[rng.Intn(len(rets))]
	ret := b.Terminator()
	x := ret.Arg(0)
	idx := len(b.Instrs()) - 1
	cpool := s.consts(s.ty)
	vals := valuesAt(f, b, idx, s.ty, cpool)
	y := pickVal(rng, vals)
	cmp := ir.NewInstr(ir.OpICmp, ir.I1, pickVal(rng, vals), pickVal(rng, vals))
	cmp.Pred = ir.Pred(rng.Intn(10))
	cmp.Nam = f.GenName("m")
	b.Erase(ret) // releases x's use; x stays dominating b's end

	t := f.NewBlock(f.GenName("bt"))
	e := f.NewBlock(f.GenName("be"))
	j := f.NewBlock(f.GenName("bj"))
	b.Append(cmp)
	br := ir.NewInstr(ir.OpBr, ir.Void, cmp)
	br.AddBlockArg(t)
	br.AddBlockArg(e)
	b.Append(br)
	for _, arm := range []*ir.Block{t, e} {
		ab := ir.NewInstr(ir.OpBr, ir.Void)
		ab.AddBlockArg(j)
		arm.Append(ab)
	}
	ph := ir.NewInstr(ir.OpPhi, s.ty)
	ph.Nam = f.GenName("m")
	ph.AddPhiIncoming(x, t)
	ph.AddPhiIncoming(y, e)
	j.Append(ph)
	j.Append(ir.NewInstr(ir.OpRet, ir.Void, ph))
	return true
}

// addLoop rewrites one returning block to run a short counted loop
// (trip count ≤ 3) accumulating over the returned value, introducing
// back-edge phis — the structure exhaustive straight-line enumeration
// can never produce.
func (s *MutationSource) addLoop(f *ir.Func, rng *rand.Rand) bool {
	var rets []*ir.Block
	for _, b := range f.Blocks {
		if t := b.Terminator(); t != nil && t.Op == ir.OpRet && t.NumArgs() == 1 && t.Arg(0).Type().Equal(s.ty) {
			rets = append(rets, b)
		}
	}
	if len(rets) == 0 {
		return false
	}
	b := rets[rng.Intn(len(rets))]
	ret := b.Terminator()
	x := ret.Arg(0)
	idx := len(b.Instrs()) - 1
	vals := valuesAt(f, b, idx, s.ty, s.consts(s.ty))
	step := pickVal(rng, vals)
	b.Erase(ret)

	l := f.NewBlock(f.GenName("bl"))
	exit := f.NewBlock(f.GenName("bx"))
	br := ir.NewInstr(ir.OpBr, ir.Void)
	br.AddBlockArg(l)
	b.Append(br)

	i := ir.NewInstr(ir.OpPhi, s.ty)
	i.Nam = f.GenName("m")
	acc := ir.NewInstr(ir.OpPhi, s.ty)
	acc.Nam = f.GenName("m")
	l.Append(i)
	l.Append(acc)
	accNext := ir.NewInstr(ir.OpAdd, s.ty, acc, step)
	accNext.Nam = f.GenName("m")
	l.Append(accNext)
	iNext := ir.NewInstr(ir.OpAdd, s.ty, i, ir.ConstInt(s.ty, 1))
	iNext.Nam = f.GenName("m")
	l.Append(iNext)
	trip := uint64(2 + rng.Intn(2)) // 2 or 3 iterations
	cmp := ir.NewInstr(ir.OpICmp, ir.I1, iNext, ir.ConstInt(s.ty, ir.TruncBits(trip, s.ty.Bits)))
	cmp.Pred = ir.PredULT
	cmp.Nam = f.GenName("m")
	l.Append(cmp)
	lbr := ir.NewInstr(ir.OpBr, ir.Void, cmp)
	lbr.AddBlockArg(l)
	lbr.AddBlockArg(exit)
	l.Append(lbr)
	i.AddPhiIncoming(ir.ConstInt(s.ty, 0), b)
	i.AddPhiIncoming(iNext, l)
	acc.AddPhiIncoming(x, b)
	acc.AddPhiIncoming(accNext, l)
	exit.Append(ir.NewInstr(ir.OpRet, ir.Void, accNext))
	return true
}

// deleteOne removes one non-terminator instruction, patching uses with
// a dominating same-type operand or a zero constant — the shrinking
// counterweight to addInstr, keeping mutant size in equilibrium.
func (s *MutationSource) deleteOne(f *ir.Func, rng *rand.Rand) bool {
	var dels []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs() {
			if !in.Op.IsTerminator() && in.Ty.IsInt() {
				dels = append(dels, in)
			}
		}
	}
	if len(dels) == 0 {
		return false
	}
	in := dels[rng.Intn(len(dels))]
	var repl ir.Value
	if in.NumUses() > 0 {
		repl = ir.ConstInt(in.Ty, 0)
		for ai := 0; ai < in.NumArgs(); ai++ {
			if a := in.Arg(ai); a.Type().Equal(in.Ty) && a != ir.Value(in) && in.Op != ir.OpPhi {
				repl = a
				break
			}
		}
	}
	ir.DeleteInstr(in, repl)
	ir.RemoveUnreachableBlocks(f)
	return true
}
