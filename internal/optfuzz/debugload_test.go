package optfuzz

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"tameir/internal/core"
	"tameir/internal/passes"
	"tameir/internal/telemetry"
	"tameir/internal/telemetry/trace"
)

// TestDebugServerUnderCampaignLoad exercises the observability plane
// under concurrency: while a traced campaign runs, scrapers hammer
// /metrics, /metrics.json, and /debug/trace. The trace endpoint
// snapshots the live flight recorder mid-emission, so this is the
// test `go test -race` uses to prove scraping never tears recorder or
// registry state. Every /debug/trace response must also parse as
// Chrome trace-event JSON — a half-written snapshot is a bug even
// without a data race.
func TestDebugServerUnderCampaignLoad(t *testing.T) {
	reg := telemetry.NewRegistry()
	rec := trace.NewRecorder(0)
	ds, err := telemetry.StartDebugServer("127.0.0.1:0", reg, 50*time.Millisecond, 4, rec)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var scrapeErr error
	var traceScrapes int
	fail := func(err error) {
		mu.Lock()
		if scrapeErr == nil {
			scrapeErr = err
		}
		mu.Unlock()
	}
	for _, path := range []string{"/metrics", "/metrics.json", "/debug/trace"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get("http://" + ds.Addr + path)
				if err != nil {
					fail(fmt.Errorf("GET %s: %w", path, err))
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					fail(fmt.Errorf("GET %s: read: %w", path, err))
					return
				}
				if resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("GET %s: status %d", path, resp.StatusCode))
					return
				}
				if path == "/debug/trace" {
					if _, _, err := trace.ParseChromeJSON(strings.NewReader(string(body))); err != nil {
						fail(fmt.Errorf("mid-campaign /debug/trace snapshot does not parse: %w", err))
						return
					}
					mu.Lock()
					traceScrapes++
					mu.Unlock()
				}
			}
		}(path)
	}

	c := o2Campaign(core.FreezeOptions(), passes.DefaultFreezeConfig(), 4, 0)
	c.Telemetry = reg
	c.Trace = rec
	st := c.Run()

	close(stop)
	wg.Wait()
	if scrapeErr != nil {
		t.Fatal(scrapeErr)
	}
	if st.Funcs == 0 {
		t.Fatal("campaign validated no functions")
	}
	if traceScrapes == 0 {
		t.Fatal("/debug/trace was never scraped during the campaign")
	}
	// The final recorder state must hold the campaign's shard spans.
	if err := trace.Assert(rec.Events(), "spans(campaign/s)>0"); err != nil {
		t.Errorf("post-campaign recorder: %v", err)
	}
}
