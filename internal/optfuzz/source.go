package optfuzz

import (
	"tameir/internal/ir"
	"tameir/internal/refine"
)

// Source is a workload: a deterministic, shardable stream of candidate
// functions for a validation campaign. The exhaustive §6 enumerator,
// the coverage-guided mutation fuzzer and the sampled wide-bitwidth
// sweep all implement it, so the campaign engine (sharding, budgets,
// shared memo, disk cache, streaming, telemetry) is written once
// against this contract.
//
// The contract that keeps campaigns reproducible:
//
//   - Shards are disjoint and cover the stream; concatenating shards
//     0..Shards()-1 in order yields one stable global order (the
//     ordinal space). Findings are reported as (shard, index) into it.
//   - Enumerate(shard, ...) must be callable for distinct shards from
//     distinct goroutines concurrently and must not share mutable
//     state between shards.
//   - The stream must depend only on the source's configuration, never
//     on the worker count or on timing. That is what makes a
//     campaign's findings byte-identical for every -workers value.
//
// Emitted functions are owned by the source; the campaign treats them
// as immutable and transforms private clones. A source must not mutate
// or reuse a function object after emitting it within one shard pass
// (the checker's program cache trusts pointer identity).
type Source interface {
	// Name labels the workload in telemetry ("exhaustive", "mutate",
	// "wide8", ...).
	Name() string
	// Shards returns how many disjoint shards the stream splits into.
	Shards() int
	// Budget returns the campaign-wide candidate budget (0 means
	// unbounded). The campaign splits it over shards deterministically
	// (shardBudgets) and passes each shard's slice as Enumerate's max.
	Budget() int
	// Capacities returns, for each shard, how many candidates the
	// shard can produce, each saturated at limit — or nil when
	// capacities are unknown (the campaign then splits the budget
	// evenly without surplus redistribution). Only consulted when
	// Budget() > 0.
	Capacities(limit int) []int
	// Enumerate streams shard's candidates in their stable order,
	// calling emit for each; max > 0 bounds the count. It returns how
	// many candidates were emitted and whether enumeration stopped
	// early (by max or by emit returning false).
	Enumerate(shard, max int, emit func(*ir.Func) bool) (int, bool)
}

// Feedback is the campaign's per-candidate verdict summary handed back
// to an Evolving source, in deterministic (shard, index) order.
type Feedback struct {
	// Shard and Index locate the candidate in the epoch's ordinal
	// space.
	Shard, Index int
	// Src is the candidate's canonical text.
	Src string
	// ChangedBy lists the pipeline passes that fired on the candidate
	// (deduplicated, first-fire order; nil for non-pipeline
	// campaigns), aggregated over every transform the campaign ran.
	ChangedBy []string
	// Refuted / Inconclusive report the worst verdict across the
	// campaign's transforms (both false means every check verified).
	Refuted      bool
	Inconclusive bool
	// Behavior is an order-sensitive FNV-1a digest of every behaviour
	// set the checker consumed for this candidate. Memo hits return
	// exactly the set enumeration would produce, so the digest is a
	// pure function of the candidate and the campaign configuration —
	// never of worker count or cache state.
	Behavior uint64
}

// Evolving is a Source whose stream is produced in epochs, with the
// verdicts of each epoch feeding the next (coverage-guided mutation).
// The campaign runs every shard of epoch e to completion, merges the
// feedback in (shard, index) order — a deterministic barrier — and
// calls Advance before enumerating epoch e+1. Enumerate always streams
// the current epoch.
type Evolving interface {
	Source
	// Epochs returns the total number of epochs (at least 1).
	Epochs() int
	// Advance folds one epoch's feedback into the source's state
	// (corpus, coverage map) and prepares the next epoch's stream. It
	// is called from one goroutine between epochs, including after the
	// final epoch (so end-of-run statistics see all feedback).
	Advance(epoch int, fb []Feedback)
}

// CorpusStats describes an evolving source's end-of-run corpus state;
// sources that keep a corpus implement CorpusReporter.
type CorpusStats struct {
	// Size is the number of functions resident in the bounded corpus.
	Size int
	// Coverage is the number of distinct coverage keys observed.
	Coverage int
}

// CorpusReporter is implemented by sources that maintain a corpus.
type CorpusReporter interface {
	CorpusStats() CorpusStats
}

// behaviorDigest folds one behaviour set into an FNV-1a accumulator.
// The canonical String rendering is deterministic (rets are sorted),
// so the fold is too.
func behaviorDigest(acc uint64, b refine.BehaviorSet) uint64 {
	const prime64 = 1099511628211
	if acc == 0 {
		acc = 14695981039346656037 // FNV offset basis
	}
	for _, c := range []byte(b.String()) {
		acc ^= uint64(c)
		acc *= prime64
	}
	acc ^= 0x1f // record set boundaries so {a}{b} != {ab}
	acc *= prime64
	return acc
}

// ExhaustiveSource adapts the §6 exhaustive enumerator (Config,
// NumShards, ShardCapacities, ExhaustiveShard) to the Source
// interface. It is the campaign's default workload: a Campaign with a
// nil Source wraps its Gen field in one of these, and the resulting
// run is byte-identical to the pre-interface engine — same shard
// partition, same budget split, same findings.
type ExhaustiveSource struct {
	Gen Config
}

// NewExhaustiveSource wraps cfg as a Source.
func NewExhaustiveSource(cfg Config) *ExhaustiveSource {
	return &ExhaustiveSource{Gen: cfg}
}

// Name implements Source.
func (e *ExhaustiveSource) Name() string { return "exhaustive" }

// Shards implements Source: one shard per first-instruction template.
func (e *ExhaustiveSource) Shards() int { return NumShards(e.Gen) }

// Budget implements Source: the generator's MaxFuncs bound.
func (e *ExhaustiveSource) Budget() int { return e.Gen.MaxFuncs }

// Capacities implements Source via the template-odometer walk.
func (e *ExhaustiveSource) Capacities(limit int) []int {
	return ShardCapacities(e.Gen, limit)
}

// Enumerate implements Source.
func (e *ExhaustiveSource) Enumerate(shard, max int, emit func(*ir.Func) bool) (int, bool) {
	gen := e.Gen
	gen.MaxFuncs = max
	return ExhaustiveShard(gen, shard, emit)
}
