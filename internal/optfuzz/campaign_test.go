package optfuzz

import (
	"reflect"
	"testing"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/passes"
	"tameir/internal/refine"
)

// TestShardsPartitionEnumeration proves the sharding invariant the
// whole pipeline rests on: concatenating ExhaustiveShard output in
// shard order reproduces Exhaustive output exactly — same functions,
// same order, same count.
func TestShardsPartitionEnumeration(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.AllowPoison = true
	// A representative opcode menu keeps the space small enough for
	// -race while still exercising multi-template shard advance: a
	// plain binop, an attribute-carrying one, icmp (bool-typed, all
	// predicates), select (3 operands), and freeze (1 operand).
	cfg.Opcodes = []ir.Op{ir.OpAdd, ir.OpUDiv, ir.OpICmp, ir.OpSelect, ir.OpFreeze}
	cfg.EnumAttrs = true
	cfg.NumParams = 1

	var serial []string
	serialCount, serialTrunc := Exhaustive(cfg, func(f *ir.Func) bool {
		serial = append(serial, f.String())
		return true
	})
	if serialTrunc {
		t.Fatal("serial enumeration truncated unexpectedly")
	}

	var sharded []string
	total := 0
	for s := 0; s < NumShards(cfg); s++ {
		n, trunc := ExhaustiveShard(cfg, s, func(f *ir.Func) bool {
			sharded = append(sharded, f.String())
			return true
		})
		if trunc {
			t.Fatalf("shard %d truncated unexpectedly", s)
		}
		total += n
	}

	if total != serialCount {
		t.Fatalf("shards yield %d funcs, serial yields %d", total, serialCount)
	}
	if !reflect.DeepEqual(serial, sharded) {
		for i := range serial {
			if i >= len(sharded) || serial[i] != sharded[i] {
				t.Fatalf("divergence at index %d:\nserial:\n%s\nsharded:\n%s",
					i, serial[i], sharded[i])
			}
		}
		t.Fatalf("sharded enumeration longer than serial: %d > %d", len(sharded), len(serial))
	}
}

// TestShardBudgets checks the deterministic MaxFuncs split.
func TestShardBudgets(t *testing.T) {
	got := shardBudgets(10, 4, nil)
	want := []int{3, 3, 2, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("shardBudgets(10, 4, nil) = %v, want %v", got, want)
	}
	if got := shardBudgets(0, 4, nil); !reflect.DeepEqual(got, []int{0, 0, 0, 0}) {
		t.Errorf("shardBudgets(0, 4, nil) = %v, want all zero", got)
	}
	sum := 0
	for _, b := range shardBudgets(17, 5, nil) {
		sum += b
	}
	if sum != 17 {
		t.Errorf("shardBudgets(17, 5, nil) sums to %d", sum)
	}

	// With capacities, budget the small shards cannot absorb flows to
	// shards with room: [3,3,2,2] clamps to [1,3,2,2] and the surplus
	// of 2 spreads over the two shards with room, front first.
	got = shardBudgets(10, 4, []int{1, 100, 2, 100})
	want = []int{1, 4, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("shardBudgets(10, 4, caps) = %v, want %v", got, want)
	}
	// Roomy capacities must not perturb the historical split.
	got = shardBudgets(10, 4, []int{100, 100, 100, 100})
	want = []int{3, 3, 2, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("roomy caps changed the split: %v, want %v", got, want)
	}
	// A budget above the whole space fills every shard to capacity.
	got = shardBudgets(100, 3, []int{4, 0, 7})
	want = []int{4, 0, 7}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("oversized budget: %v, want capacities %v", got, want)
	}
}

// TestBudgetedShardingMatchesSerial is the ROADMAP open item: with
// MaxFuncs set, the sharded candidate count must equal the serial one
// even when some shards cannot absorb their even budget share. The
// icmp-only shards below have zero capacity (a 1-instruction function
// must produce a wide value to return), so without the second fill
// pass most of the budget would evaporate.
func TestBudgetedShardingMatchesSerial(t *testing.T) {
	gen := DefaultConfig(1)
	gen.AllowUndef = false
	gen.AllowPoison = true
	gen.Opcodes = []ir.Op{ir.OpICmp, ir.OpAdd}
	gen.MaxFuncs = 20

	serialGen := gen
	serial, _ := Exhaustive(serialGen, func(*ir.Func) bool { return true })
	if serial != gen.MaxFuncs {
		t.Fatalf("serial enumeration yields %d funcs, want the budget %d", serial, gen.MaxFuncs)
	}

	caps := ShardCapacities(gen, gen.MaxFuncs)
	if caps[0] != 0 {
		t.Fatalf("icmp shard has capacity %d, want 0", caps[0])
	}

	st := Campaign{
		Gen:    gen,
		Refine: refine.DefaultConfig(core.FreezeOptions(), core.FreezeOptions()),
	}.Run()
	if st.Funcs != serial {
		t.Fatalf("sharded budgeted campaign checked %d funcs, serial checks %d", st.Funcs, serial)
	}
}

func o2Campaign(sem core.Options, pcfg *passes.Config, workers, memoEntries int) Campaign {
	gen := DefaultConfig(2)
	gen.AllowUndef = false
	gen.AllowPoison = true
	gen.MaxFuncs = 600
	return Campaign{
		Gen:    gen,
		Refine: refine.DefaultConfig(sem, sem),
		Transform: func(f *ir.Func) {
			m := ir.NewModule()
			m.AddFunc(f)
			passes.O2().Run(m, pcfg)
		},
		Workers:     workers,
		MemoEntries: memoEntries,
	}
}

// TestCampaignDeterministicAcrossWorkers is the tentpole guarantee: a
// parallel campaign reports the same stats and the same findings, in
// the same order, as a serial one.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	sem := core.FreezeOptions()
	base := o2Campaign(sem, passes.DefaultFreezeConfig(), 1, 0)
	ref := base.Run()
	if ref.Funcs == 0 {
		t.Fatal("campaign validated no functions")
	}

	for _, workers := range []int{2, 8} {
		c := base
		c.Workers = workers
		got := c.Run()
		if got.MemoLookups != ref.MemoLookups {
			t.Errorf("workers=%d: %d memo lookups, serial does %d (lookup count is one per behaviour set and must not depend on scheduling)",
				workers, got.MemoLookups, ref.MemoLookups)
		}
		if !reflect.DeepEqual(maskMemo(ref), maskMemo(got)) {
			t.Errorf("workers=%d diverges from serial:\nserial:  %+v\nparallel: %+v",
				workers, summarize(ref), summarize(got))
		}
	}
}

func summarize(s Stats) Stats {
	s.Findings = nil // keep failure output readable; DeepEqual already compared them
	return s
}

// maskMemo zeroes the counters that legitimately depend on scheduling
// when worker shards share one memo: which shard computes a shared set
// first (and therefore who hits, who stores, and what the clock
// evicts) is a race. Verdicts, findings and the lookup count are not.
func maskMemo(s Stats) Stats {
	s.MemoHits, s.MemoEvictions, s.MemoSets = 0, 0, 0
	return s
}

// TestCampaignPipelineDeterministicAcrossWorkers extends the
// determinism guarantee to Pipeline campaigns with instrumentation on:
// findings, verdict counters, and every merged pass statistic except
// wall time must be identical for any worker count.
func TestCampaignPipelineDeterministicAcrossWorkers(t *testing.T) {
	build := func(workers int) Campaign {
		gen := DefaultConfig(2)
		gen.AllowUndef = false
		gen.AllowPoison = true
		gen.MaxFuncs = 600
		return Campaign{
			Gen:         gen,
			Refine:      refine.DefaultConfig(core.FreezeOptions(), core.FreezeOptions()),
			Pipeline:    passes.O2().Instrument(),
			PipelineCfg: passes.DefaultFreezeConfig(),
			Workers:     workers,
		}
	}
	ref := build(1).Run()
	if ref.Funcs == 0 {
		t.Fatal("campaign validated no functions")
	}
	if ref.Opt == nil || ref.Opt.Funcs() != ref.Funcs {
		t.Fatalf("pipeline stats not merged: %+v", ref.Opt)
	}

	for _, workers := range []int{2, 8} {
		got := build(workers).Run()
		refCmp, gotCmp := maskMemo(ref), maskMemo(got)
		refCmp.Opt, gotCmp.Opt = nil, nil
		if !reflect.DeepEqual(refCmp, gotCmp) {
			t.Errorf("workers=%d diverges from serial:\nserial:   %+v\nparallel: %+v",
				workers, summarize(refCmp), summarize(gotCmp))
		}
		if got.Opt.Funcs() != ref.Opt.Funcs() || got.Opt.FixpointIters() != ref.Opt.FixpointIters() ||
			got.Opt.Converged() != ref.Opt.Converged() || got.Opt.Analysis() != ref.Opt.Analysis() {
			t.Errorf("workers=%d: pass-manager counters diverge: funcs=%d/%d iters=%d/%d converged=%d/%d analysis=%+v/%+v",
				workers, got.Opt.Funcs(), ref.Opt.Funcs(), got.Opt.FixpointIters(), ref.Opt.FixpointIters(),
				got.Opt.Converged(), ref.Opt.Converged(), got.Opt.Analysis(), ref.Opt.Analysis())
		}
		rs, gs := ref.Opt.PassStats(), got.Opt.PassStats()
		if len(rs) != len(gs) {
			t.Fatalf("workers=%d: %d pass stats vs %d", workers, len(gs), len(rs))
		}
		for i := range rs {
			rs[i].Wall, gs[i].Wall = 0, 0
			if rs[i] != gs[i] {
				t.Errorf("workers=%d: pass %s stats diverge: %+v vs %+v",
					workers, rs[i].Name, gs[i], rs[i])
			}
		}
	}
}

// TestCampaignMemoInvariant: enabling or disabling the memo must not
// change any verdict or finding, only the hit counters.
func TestCampaignMemoInvariant(t *testing.T) {
	sem := core.LegacyOptions(core.BranchPoisonNondet)
	pcfg := passes.DefaultLegacyConfig()
	pcfg.Unsound = true

	with := o2Campaign(sem, pcfg, 1, 0).Run()
	without := o2Campaign(sem, pcfg, 1, -1).Run()

	if without.MemoLookups != 0 {
		t.Errorf("memo disabled but %d lookups recorded", without.MemoLookups)
	}
	if with.MemoLookups == 0 {
		t.Errorf("memo enabled but no lookups recorded")
	}
	with, without = maskMemo(with), maskMemo(without)
	with.MemoLookups, without.MemoLookups = 0, 0
	if !reflect.DeepEqual(with, without) {
		t.Errorf("memo changed campaign outcome:\nwith:    %+v\nwithout: %+v",
			summarize(with), summarize(without))
	}
}

// TestCampaignCatchesUnsoundPipeline reproduces the paper's result in
// miniature: the historical (pre-freeze) pass variants miscompile some
// function in the enumerated space, and the campaign finds it.
func TestCampaignCatchesUnsoundPipeline(t *testing.T) {
	sem := core.LegacyOptions(core.BranchPoisonNondet)
	pcfg := passes.DefaultLegacyConfig()
	pcfg.Unsound = true
	gen := DefaultConfig(2)
	gen.MaxFuncs = 2000
	c := Campaign{
		Gen:    gen,
		Refine: refine.DefaultConfig(sem, sem),
		Transform: func(f *ir.Func) {
			m := ir.NewModule()
			m.AddFunc(f)
			passes.O2().Run(m, pcfg)
		},
		Workers: 4,
	}
	st := c.Run()
	if st.Refuted == 0 {
		t.Fatal("unsound pipeline produced no refuted findings")
	}
	for _, f := range st.Findings {
		if f.Src == "" || f.Tgt == "" || f.Result.Status != refine.Refuted {
			t.Errorf("malformed finding: %+v", f)
		}
	}
}

// TestCampaignNilTransform checks the self-refinement fast path: every
// function refines itself, so a transform-free campaign must verify
// everything it can decide.
func TestCampaignNilTransform(t *testing.T) {
	gen := DefaultConfig(1)
	gen.AllowUndef = false // undef is not part of the freeze dialect
	gen.AllowPoison = true
	gen.MaxFuncs = 0 // unbounded: cover the whole 1-instruction space
	want, _ := Exhaustive(gen, func(*ir.Func) bool { return true })
	c := Campaign{
		Gen:    gen,
		Refine: refine.DefaultConfig(core.FreezeOptions(), core.FreezeOptions()),
	}
	st := c.Run()
	if st.Refuted != 0 {
		t.Fatalf("self-refinement refuted %d functions", st.Refuted)
	}
	if st.Funcs != want {
		t.Fatalf("validated %d funcs, want the full space of %d", st.Funcs, want)
	}
}
