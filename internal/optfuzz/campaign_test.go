package optfuzz

import (
	"reflect"
	"testing"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/passes"
	"tameir/internal/refine"
)

// TestShardsPartitionEnumeration proves the sharding invariant the
// whole pipeline rests on: concatenating ExhaustiveShard output in
// shard order reproduces Exhaustive output exactly — same functions,
// same order, same count.
func TestShardsPartitionEnumeration(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.AllowPoison = true
	// A representative opcode menu keeps the space small enough for
	// -race while still exercising multi-template shard advance: a
	// plain binop, an attribute-carrying one, icmp (bool-typed, all
	// predicates), select (3 operands), and freeze (1 operand).
	cfg.Opcodes = []ir.Op{ir.OpAdd, ir.OpUDiv, ir.OpICmp, ir.OpSelect, ir.OpFreeze}
	cfg.EnumAttrs = true
	cfg.NumParams = 1

	var serial []string
	serialCount, serialTrunc := Exhaustive(cfg, func(f *ir.Func) bool {
		serial = append(serial, f.String())
		return true
	})
	if serialTrunc {
		t.Fatal("serial enumeration truncated unexpectedly")
	}

	var sharded []string
	total := 0
	for s := 0; s < NumShards(cfg); s++ {
		n, trunc := ExhaustiveShard(cfg, s, func(f *ir.Func) bool {
			sharded = append(sharded, f.String())
			return true
		})
		if trunc {
			t.Fatalf("shard %d truncated unexpectedly", s)
		}
		total += n
	}

	if total != serialCount {
		t.Fatalf("shards yield %d funcs, serial yields %d", total, serialCount)
	}
	if !reflect.DeepEqual(serial, sharded) {
		for i := range serial {
			if i >= len(sharded) || serial[i] != sharded[i] {
				t.Fatalf("divergence at index %d:\nserial:\n%s\nsharded:\n%s",
					i, serial[i], sharded[i])
			}
		}
		t.Fatalf("sharded enumeration longer than serial: %d > %d", len(sharded), len(serial))
	}
}

// TestShardBudgets checks the deterministic MaxFuncs split.
func TestShardBudgets(t *testing.T) {
	got := shardBudgets(10, 4)
	want := []int{3, 3, 2, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("shardBudgets(10, 4) = %v, want %v", got, want)
	}
	if got := shardBudgets(0, 4); !reflect.DeepEqual(got, []int{0, 0, 0, 0}) {
		t.Errorf("shardBudgets(0, 4) = %v, want all zero", got)
	}
	sum := 0
	for _, b := range shardBudgets(17, 5) {
		sum += b
	}
	if sum != 17 {
		t.Errorf("shardBudgets(17, 5) sums to %d", sum)
	}
}

func o2Campaign(sem core.Options, pcfg *passes.Config, workers, memoEntries int) Campaign {
	gen := DefaultConfig(2)
	gen.AllowUndef = false
	gen.AllowPoison = true
	gen.MaxFuncs = 600
	return Campaign{
		Gen:    gen,
		Refine: refine.DefaultConfig(sem, sem),
		Transform: func(f *ir.Func) {
			m := ir.NewModule()
			m.AddFunc(f)
			passes.O2().Run(m, pcfg)
		},
		Workers:     workers,
		MemoEntries: memoEntries,
	}
}

// TestCampaignDeterministicAcrossWorkers is the tentpole guarantee: a
// parallel campaign reports the same stats and the same findings, in
// the same order, as a serial one.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	sem := core.FreezeOptions()
	base := o2Campaign(sem, passes.DefaultFreezeConfig(), 1, 0)
	ref := base.Run()
	if ref.Funcs == 0 {
		t.Fatal("campaign validated no functions")
	}

	for _, workers := range []int{2, 8} {
		c := base
		c.Workers = workers
		got := c.Run()
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d diverges from serial:\nserial:  %+v\nparallel: %+v",
				workers, summarize(ref), summarize(got))
		}
	}
}

func summarize(s Stats) Stats {
	s.Findings = nil // keep failure output readable; DeepEqual already compared them
	return s
}

// TestCampaignMemoInvariant: enabling or disabling the memo must not
// change any verdict or finding, only the hit counters.
func TestCampaignMemoInvariant(t *testing.T) {
	sem := core.LegacyOptions(core.BranchPoisonNondet)
	pcfg := passes.DefaultLegacyConfig()
	pcfg.Unsound = true

	with := o2Campaign(sem, pcfg, 1, 0).Run()
	without := o2Campaign(sem, pcfg, 1, -1).Run()

	if without.MemoLookups != 0 {
		t.Errorf("memo disabled but %d lookups recorded", without.MemoLookups)
	}
	if with.MemoLookups == 0 {
		t.Errorf("memo enabled but no lookups recorded")
	}
	with.MemoHits, with.MemoLookups = 0, 0
	without.MemoHits, without.MemoLookups = 0, 0
	if !reflect.DeepEqual(with, without) {
		t.Errorf("memo changed campaign outcome:\nwith:    %+v\nwithout: %+v",
			summarize(with), summarize(without))
	}
}

// TestCampaignCatchesUnsoundPipeline reproduces the paper's result in
// miniature: the historical (pre-freeze) pass variants miscompile some
// function in the enumerated space, and the campaign finds it.
func TestCampaignCatchesUnsoundPipeline(t *testing.T) {
	sem := core.LegacyOptions(core.BranchPoisonNondet)
	pcfg := passes.DefaultLegacyConfig()
	pcfg.Unsound = true
	gen := DefaultConfig(2)
	gen.MaxFuncs = 2000
	c := Campaign{
		Gen:    gen,
		Refine: refine.DefaultConfig(sem, sem),
		Transform: func(f *ir.Func) {
			m := ir.NewModule()
			m.AddFunc(f)
			passes.O2().Run(m, pcfg)
		},
		Workers: 4,
	}
	st := c.Run()
	if st.Refuted == 0 {
		t.Fatal("unsound pipeline produced no refuted findings")
	}
	for _, f := range st.Findings {
		if f.Src == "" || f.Tgt == "" || f.Result.Status != refine.Refuted {
			t.Errorf("malformed finding: %+v", f)
		}
	}
}

// TestCampaignNilTransform checks the self-refinement fast path: every
// function refines itself, so a transform-free campaign must verify
// everything it can decide.
func TestCampaignNilTransform(t *testing.T) {
	gen := DefaultConfig(1)
	gen.AllowUndef = false // undef is not part of the freeze dialect
	gen.AllowPoison = true
	gen.MaxFuncs = 0 // unbounded: cover the whole 1-instruction space
	want, _ := Exhaustive(gen, func(*ir.Func) bool { return true })
	c := Campaign{
		Gen:    gen,
		Refine: refine.DefaultConfig(core.FreezeOptions(), core.FreezeOptions()),
	}
	st := c.Run()
	if st.Refuted != 0 {
		t.Fatalf("self-refinement refuted %d functions", st.Refuted)
	}
	if st.Funcs != want {
		t.Fatalf("validated %d funcs, want the full space of %d", st.Funcs, want)
	}
}
