package optfuzz

import (
	"fmt"
	"os"
	"strings"

	"tameir/internal/ir"
)

// Corpus persistence: a corpus is one parseable IR module on disk, so
// it round-trips through the ordinary parser/printer, diffs cleanly in
// a terminal, and can be reused as -corpus seeds by a later campaign.

// SaveCorpus writes funcs to path as a single module. Functions are
// renamed c0..cN-1 so the module has unique symbols regardless of what
// the workload called them.
func SaveCorpus(path string, funcs []*ir.Func) error {
	var b strings.Builder
	for i, f := range funcs {
		g := ir.CloneFunc(f)
		g.Nam = fmt.Sprintf("c%d", i)
		b.WriteString(g.String())
		b.WriteString("\n")
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// LoadCorpus parses a module written by SaveCorpus (or by hand) into
// seed functions.
func LoadCorpus(path string) ([]*ir.Func, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := ir.ParseModule(string(data))
	if err != nil {
		return nil, fmt.Errorf("corpus %s: %w", path, err)
	}
	return m.Funcs, nil
}
