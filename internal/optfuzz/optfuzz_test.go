package optfuzz

import (
	"math/rand"
	"testing"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/passes"
	"tameir/internal/refine"
)

func TestExhaustiveOneInstr(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Opcodes = []ir.Op{ir.OpAdd, ir.OpUDiv}
	seen := map[string]bool{}
	n, truncated := Exhaustive(cfg, func(f *ir.Func) bool {
		if err := ir.Verify(f, ir.VerifyLegacy); err != nil {
			t.Fatalf("generated invalid IR: %v\n%s", err, f)
		}
		s := f.String()
		if seen[s] {
			t.Fatalf("duplicate function generated:\n%s", s)
		}
		seen[s] = true
		return true
	})
	if truncated {
		t.Error("unexpected truncation")
	}
	// 2 opcodes × 7 operand choices² (2 params + 4 consts + undef).
	want := 2 * 7 * 7
	if n != want {
		t.Errorf("generated %d functions, want %d", n, want)
	}
}

func TestExhaustiveRespectsMaxFuncs(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.MaxFuncs = 100
	n, truncated := Exhaustive(cfg, func(*ir.Func) bool { return true })
	if n != 100 || !truncated {
		t.Errorf("n=%d truncated=%v, want 100/true", n, truncated)
	}
}

func TestExhaustiveAllValid(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Opcodes = []ir.Op{ir.OpAdd, ir.OpICmp, ir.OpSelect, ir.OpFreeze}
	cfg.MaxFuncs = 5000
	n, _ := Exhaustive(cfg, func(f *ir.Func) bool {
		if err := ir.Verify(f, ir.VerifyLegacy); err != nil {
			t.Fatalf("invalid: %v\n%s", err, f)
		}
		return true
	})
	if n == 0 {
		t.Fatal("nothing generated")
	}
}

func TestRandomGeneratesValidFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		f := Random(rng, DefaultRandomConfig())
		if err := ir.Verify(f, ir.VerifyLegacy); err != nil {
			t.Fatalf("iteration %d: invalid IR: %v\n%s", i, err, f)
		}
	}
}

// The Section 6 experiment in miniature: exhaustively generate
// functions, run the fixed pipeline, and validate every transformation
// with the refinement checker. Zero refutations expected.
func TestValidateFixedPassesExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive validation is slow")
	}
	cfg := DefaultConfig(2)
	cfg.Opcodes = []ir.Op{ir.OpAdd, ir.OpMul, ir.OpUDiv, ir.OpICmp, ir.OpSelect}
	cfg.MaxFuncs = 1500
	pcfg := passes.DefaultFreezeConfig()
	rcfg := refine.DefaultConfig(pcfg.Sem, pcfg.Sem)
	// Undef is not part of the freeze dialect.
	cfg.AllowUndef = false
	checked, refuted := 0, 0
	Exhaustive(cfg, func(f *ir.Func) bool {
		work := ir.CloneFunc(f)
		for _, p := range []passes.Pass{passes.InstSimplify{}, passes.InstCombine{}, passes.GVN{}, passes.SCCP{}, passes.DCE{}} {
			passes.RunPass(p, work, pcfg)
		}
		r := refine.Check(f, work, rcfg)
		checked++
		if r.Status == refine.Refuted {
			refuted++
			t.Errorf("fixed pipeline refuted on:\n%s\n→\n%s\n%s", f, work, r)
			return refuted < 3
		}
		return true
	})
	if checked == 0 {
		t.Fatal("nothing checked")
	}
	t.Logf("validated %d functions, %d refuted", checked, refuted)
}

// Random-CFG validation of the fixed O2 pipeline under legacy
// semantics (undef present): the fixed passes must never be refuted.
func TestValidateFixedO2Random(t *testing.T) {
	if testing.Short() {
		t.Skip("random validation is slow")
	}
	rng := rand.New(rand.NewSource(42))
	legacy := core.LegacyOptions(core.BranchPoisonNondet)
	pcfg := &passes.Config{Sem: legacy, VerifyAfterEach: true}
	rcfg := refine.DefaultConfig(legacy, legacy)
	for i := 0; i < 300; i++ {
		f := Random(rng, DefaultRandomConfig())
		work := ir.CloneFunc(f)
		passes.O2().RunFunc(work, pcfg)
		r := refine.Check(f, work, rcfg)
		if r.Status == refine.Refuted {
			t.Fatalf("iteration %d: fixed O2 refuted:\n%s\n→\n%s\n%s", i, f, work, r)
		}
	}
}

// The historical (unsound) pipeline must be caught by the validator on
// at least one generated function — the automation that found the
// paper's bugs.
func TestValidatorCatchesUnsoundPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("validation is slow")
	}
	legacy := core.LegacyOptions(core.BranchPoisonNondet)
	pcfg := &passes.Config{Sem: legacy, Unsound: true}
	rcfg := refine.DefaultConfig(legacy, legacy)
	cfg := DefaultConfig(1)
	cfg.Opcodes = []ir.Op{ir.OpMul}
	found := false
	Exhaustive(cfg, func(f *ir.Func) bool {
		work := ir.CloneFunc(f)
		passes.RunPass(passes.InstCombine{}, work, pcfg)
		r := refine.Check(f, work, rcfg)
		if r.Status == refine.Refuted {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Error("validator failed to catch the unsound mul→add rewrite")
	}
}
