package optfuzz

import (
	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/parallel"
	"tameir/internal/refine"
)

// Campaign is one fuzz-and-validate run, the paper's §6 experiment as
// a pipeline: exhaustively enumerate the generator space, transform
// every candidate, and decide refinement of each transformation.
//
// The enumeration space is split into NumShards(Gen) disjoint shards
// (one per first-instruction template); a bounded worker pool runs the
// shards concurrently, each worker with its own generator state,
// enumeration oracle, interpreter state, and behaviour-set memo — no
// mutable state is shared, and results are merged in shard order. A
// campaign's outcome is therefore byte-identical for every worker
// count, including Workers=1, which runs inline with no goroutines.
type Campaign struct {
	// Gen bounds the generator. Gen.MaxFuncs is a campaign-wide budget
	// split deterministically across shards (by shard index, not by
	// worker), so the checked candidate set does not depend on the
	// worker count.
	Gen Config

	// Refine configures the checker. Its Memo and Oracle fields are
	// ignored: each shard gets private ones.
	Refine refine.Config

	// Transform mutates a candidate in place; the campaign validates
	// original → transformed. The candidate passed in is already a
	// private clone. A nil Transform checks self-refinement.
	Transform func(*ir.Func)

	// Transforms, when non-empty, overrides Transform: every candidate
	// is validated against each named transform in order, §6-style
	// ("both individual passes and -O2"). The passes share the shard's
	// memo, so each candidate's source behaviour sets are derived once
	// and looked up for every subsequent pass — this is where
	// memoization pays, since an exhaustive generator never repeats a
	// source within one pass.
	Transforms []NamedTransform

	// Workers bounds pool concurrency; 0 means one per CPU, 1 is
	// serial.
	Workers int

	// MemoEntries bounds each shard's behaviour-set memo. 0 means
	// refine.DefaultMemoEntries; negative disables memoization.
	MemoEntries int
}

// NamedTransform is one pass (or pipeline) under validation.
type NamedTransform struct {
	Name string
	Fn   func(*ir.Func)
}

// Finding is one refuted transformation.
type Finding struct {
	// Shard and Index locate the candidate deterministically: Index is
	// its position within the shard's enumeration order.
	Shard, Index int
	// Pass names the refuted transform (empty for a bare Transform).
	Pass string
	// Src and Tgt are the printed functions.
	Src, Tgt string
	// Result carries the counterexample.
	Result refine.Result
}

// PassTally is one pass's slice of a multi-pass campaign.
type PassTally struct {
	Pass         string
	Funcs        int
	Verified     int
	Refuted      int
	Inconclusive int
}

// Stats aggregates a campaign. Funcs counts candidate functions once
// each; the verdict counters count (candidate, pass) validations, so
// with N transforms they sum to N×Funcs.
type Stats struct {
	Funcs        int
	Verified     int
	Refuted      int
	Inconclusive int
	Truncated    bool

	// Passes tallies per transform, in Transforms order (absent for a
	// bare Transform campaign).
	Passes []PassTally

	// Findings lists every refuted candidate in deterministic
	// (shard, index, pass) order.
	Findings []Finding

	// MemoHits / MemoLookups aggregate the per-shard memo counters.
	MemoHits    uint64
	MemoLookups uint64
}

// HitRate returns the memo hit fraction in [0, 1].
func (s Stats) HitRate() float64 {
	if s.MemoLookups == 0 {
		return 0
	}
	return float64(s.MemoHits) / float64(s.MemoLookups)
}

// shardBudgets splits a campaign-wide MaxFuncs over shards:
// shard i receives total/shards plus one of the remainder's units.
// The split depends only on the shard count, never on the worker
// count. A zero total means unbounded and yields all zeros.
func shardBudgets(total, shards int) []int {
	out := make([]int, shards)
	if total <= 0 {
		return out
	}
	base, rem := total/shards, total%shards
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// Run executes the campaign and returns the merged, deterministic
// result.
func (c Campaign) Run() Stats {
	shards := NumShards(c.Gen)
	budgets := shardBudgets(c.Gen.MaxFuncs, shards)

	type shardStats struct {
		Stats
	}
	results := parallel.Map(c.Workers, shards, func(s int) shardStats {
		gen := c.Gen
		gen.MaxFuncs = budgets[s]
		if c.Gen.MaxFuncs > 0 && budgets[s] == 0 {
			return shardStats{} // budget exhausted before this shard
		}
		rcfg := c.Refine
		rcfg.Oracle = core.NewEnumOracle(rcfg.MaxChoices, rcfg.MaxFanout)
		if c.MemoEntries >= 0 {
			rcfg.Memo = refine.NewMemo(c.MemoEntries)
		} else {
			rcfg.Memo = nil
		}

		transforms := c.Transforms
		if len(transforms) == 0 {
			transforms = []NamedTransform{{Fn: c.Transform}}
		}

		var st shardStats
		var scratch PassTally // tally sink for single-transform campaigns
		if len(c.Transforms) > 0 {
			st.Passes = make([]PassTally, len(transforms))
			for i, tr := range transforms {
				st.Passes[i].Pass = tr.Name
			}
		}
		idx := 0
		_, truncated := ExhaustiveShard(gen, s, func(f *ir.Func) bool {
			st.Funcs++
			for ti, tr := range transforms {
				work := ir.CloneFunc(f)
				if tr.Fn != nil {
					tr.Fn(work)
				}
				r := refine.Check(f, work, rcfg)
				tally := &scratch
				if st.Passes != nil {
					tally = &st.Passes[ti]
				}
				tally.Funcs++
				switch r.Status {
				case refine.Verified:
					st.Verified++
					tally.Verified++
				case refine.Refuted:
					st.Refuted++
					tally.Refuted++
					st.Findings = append(st.Findings, Finding{
						Shard: s, Index: idx, Pass: tr.Name,
						Src: f.String(), Tgt: work.String(),
						Result: r,
					})
				default:
					st.Inconclusive++
					tally.Inconclusive++
				}
			}
			idx++
			return true
		})
		st.Truncated = truncated
		if rcfg.Memo != nil {
			st.MemoHits = rcfg.Memo.Hits()
			st.MemoLookups = rcfg.Memo.Lookups()
		}
		return st
	})

	var out Stats
	if len(c.Transforms) > 0 {
		out.Passes = make([]PassTally, len(c.Transforms))
		for i, tr := range c.Transforms {
			out.Passes[i].Pass = tr.Name
		}
	}
	for _, r := range results {
		out.Funcs += r.Funcs
		out.Verified += r.Verified
		out.Refuted += r.Refuted
		out.Inconclusive += r.Inconclusive
		out.Truncated = out.Truncated || r.Truncated
		out.Findings = append(out.Findings, r.Findings...)
		out.MemoHits += r.MemoHits
		out.MemoLookups += r.MemoLookups
		for i, p := range r.Passes {
			out.Passes[i].Funcs += p.Funcs
			out.Passes[i].Verified += p.Verified
			out.Passes[i].Refuted += p.Refuted
			out.Passes[i].Inconclusive += p.Inconclusive
		}
	}
	return out
}
