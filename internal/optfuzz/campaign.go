package optfuzz

import (
	"sync"
	"sync/atomic"
	"time"

	"tameir/internal/cache"
	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/parallel"
	"tameir/internal/passes"
	"tameir/internal/refine"
	"tameir/internal/telemetry"
)

// Campaign is one fuzz-and-validate run, the paper's §6 experiment as
// a pipeline: exhaustively enumerate the generator space, transform
// every candidate, and decide refinement of each transformation.
//
// The enumeration space is split into NumShards(Gen) disjoint shards
// (one per first-instruction template); a bounded worker pool runs the
// shards concurrently, each worker with its own generator state,
// enumeration oracle, compiled-program cache, and memo session, and
// results are merged in shard order. The behaviour-set memo itself is
// ONE concurrency-safe cache shared by all shards, so a candidate that
// collapses to a form some other shard already explored is a lookup,
// not a re-enumeration — cross-shard hits are a large fraction of the
// total on §6-style spaces, where most shards funnel into the same few
// small forms.
//
// A campaign's findings and verdict counters remain byte-identical for
// every worker count, including Workers=1 (which runs inline with no
// goroutines): a memo hit returns exactly the set enumeration would
// have produced, so sharing the memo affects speed, never results.
// Only the memo *statistics* (Stats.MemoHits and friends) depend on
// scheduling when Workers > 1, since which shard computes a shared set
// first is a race.
type Campaign struct {
	// Gen bounds the generator. Gen.MaxFuncs is a campaign-wide budget
	// split deterministically across shards (by shard index, not by
	// worker), so the checked candidate set does not depend on the
	// worker count.
	Gen Config

	// Refine configures the checker. Its Memo, Session, Oracle and
	// Programs fields are ignored: the campaign supplies one shared
	// memo plus a private session, oracle and program cache per shard.
	// Refine.Tier is the campaign's execution-tier knob: it flows into
	// every shard's checker unchanged, so a campaign built on
	// refine.DefaultConfig auto-promotes hot candidates to the
	// bytecode VM (the promotions surface in the engine metrics).
	Refine refine.Config

	// Transform mutates a candidate in place; the campaign validates
	// original → transformed. The candidate passed in is already a
	// private clone. A nil Transform checks self-refinement.
	Transform func(*ir.Func)

	// Transforms, when non-empty, overrides Transform: every candidate
	// is validated against each named transform in order, §6-style
	// ("both individual passes and -O2"). The passes share the shard's
	// memo, so each candidate's source behaviour sets are derived once
	// and looked up for every subsequent pass — this is where
	// memoization pays, since an exhaustive generator never repeats a
	// source within one pass.
	Transforms []NamedTransform

	// Pipeline, when non-nil (and Transforms is empty), overrides
	// Transform: every candidate runs through a per-shard Clone of the
	// pass manager, so findings carry the names of the passes that
	// fired (Finding.ChangedBy) and, when the manager is instrumented,
	// per-shard Stats merge deterministically into the campaign's Opt.
	Pipeline *passes.PassManager

	// PipelineCfg is the pass configuration for Pipeline. Required when
	// Pipeline is set.
	PipelineCfg *passes.Config

	// Workers bounds pool concurrency; 0 means one per CPU, 1 is
	// serial.
	Workers int

	// MemoEntries bounds the campaign's shared behaviour-set memo. 0
	// means refine.DefaultMemoEntries; negative disables memoization.
	MemoEntries int

	// CacheDir, when non-empty, warm-starts the campaign from the
	// persistent snapshots in that directory (behaviour-set memo +
	// bytecode lowering metadata) and writes refreshed snapshots back
	// after the run. Snapshots are versioned and fingerprinted
	// (core.SemanticsFingerprint); stale or mismatched ones are
	// rejected wholesale, so a warm campaign's verdict stream is
	// byte-identical to a cold one (TestCacheDirWarmMatchesCold).
	// Falls back to Refine.CacheDir when empty.
	CacheDir string

	// Telemetry, when non-nil, receives the campaign's merged metric
	// counters after the run: campaign_* verdicts, per-shard checker and
	// engine counters (check_*, engine_*, pool_frames_*), per-shard
	// program-cache traffic (progcache_*), shared-memo counters
	// (memo_*), worker-pool utilization (pool_*), and — for instrumented
	// Pipeline campaigns — the merged pass-manager registry (pass_*,
	// opt_*, analysis_*). Shard-local collectors merge in shard order;
	// the registry's deterministic section is byte-identical for every
	// worker count.
	Telemetry *telemetry.Registry

	// Stream, when non-nil, receives every Finding in deterministic
	// (shard, index, pass) order while the campaign runs, and is closed
	// by Run before it returns. Streamed findings are NOT retained in
	// Stats.Findings, so a campaign with a draining consumer holds at
	// most the out-of-turn shards' findings in memory — this is the
	// report-early-and-bound-memory path for huge campaigns. A slow
	// consumer applies backpressure to the whole pipeline.
	Stream chan<- Finding

	// Progress, when non-nil, is invoked from campaign goroutines —
	// rate-limited to ProgressEvery, serialized, plus once with the
	// final totals — as candidates are validated. Keep it fast; it runs
	// on the hot path's rate-limited edge.
	Progress func(CampaignProgress)

	// ProgressEvery rate-limits Progress callbacks; 0 means 100ms.
	ProgressEvery time.Duration
}

// CampaignProgress is a running snapshot handed to Progress callbacks.
// Counters are totals since the campaign started.
type CampaignProgress struct {
	Shards     int
	ShardsDone int

	Funcs        uint64
	Verified     uint64
	Refuted      uint64
	Inconclusive uint64
}

// NamedTransform is one pass (or pipeline) under validation.
type NamedTransform struct {
	Name string
	Fn   func(*ir.Func)
}

// Finding is one refuted transformation.
type Finding struct {
	// Shard and Index locate the candidate deterministically: Index is
	// its position within the shard's enumeration order.
	Shard, Index int
	// Pass names the refuted transform (empty for a bare Transform).
	Pass string
	// ChangedBy lists the pipeline passes that reported a change on
	// this candidate, deduplicated, in first-fire order (only set for
	// Pipeline campaigns). The last CFG- or value-rewriting pass in the
	// list is the prime miscompilation suspect.
	ChangedBy []string
	// Src and Tgt are the printed functions.
	Src, Tgt string
	// Result carries the counterexample.
	Result refine.Result
}

// PassTally is one pass's slice of a multi-pass campaign.
type PassTally struct {
	Pass         string
	Funcs        int
	Verified     int
	Refuted      int
	Inconclusive int
}

// Stats aggregates a campaign. Funcs counts candidate functions once
// each; the verdict counters count (candidate, pass) validations, so
// with N transforms they sum to N×Funcs.
type Stats struct {
	Funcs        int
	Verified     int
	Refuted      int
	Inconclusive int
	Truncated    bool

	// Passes tallies per transform, in Transforms order (absent for a
	// bare Transform campaign).
	Passes []PassTally

	// Findings lists every refuted candidate in deterministic
	// (shard, index, pass) order.
	Findings []Finding

	// MemoHits / MemoLookups / MemoEvictions are the shared memo's
	// counters after the run; MemoSets is how many behaviour sets it
	// ended up holding. Under Workers > 1 the hit/eviction split is
	// scheduling-dependent (the verdicts above are not).
	MemoHits      uint64
	MemoLookups   uint64
	MemoEvictions uint64
	MemoSets      int

	// DiskLoads / DiskHits / DiskStaleRejects are the persistent
	// -cache-dir counters: snapshot files loaded in full, memo hits
	// served by disk-loaded entries, snapshots rejected wholesale. All
	// zero without CacheDir.
	DiskLoads        uint64
	DiskHits         uint64
	DiskStaleRejects uint64
	// DiskErr records a failed snapshot load or save (I/O, not
	// staleness — staleness is a counted, non-error cold start). The
	// campaign's verdicts are unaffected; drivers surface it as a
	// warning.
	DiskErr error

	// Opt merges the per-shard pass-manager statistics in shard order
	// (nil unless the campaign ran an instrumented Pipeline).
	Opt *passes.Stats
}

// HitRate returns the memo hit fraction in [0, 1].
func (s Stats) HitRate() float64 {
	if s.MemoLookups == 0 {
		return 0
	}
	return float64(s.MemoHits) / float64(s.MemoLookups)
}

// shardBudgets splits a campaign-wide MaxFuncs over shards:
// shard i receives total/shards plus one of the remainder's units.
// When caps (per-shard enumeration capacities) is non-nil, a second
// fill pass reclaims the budget that small shards cannot absorb and
// redistributes it — evenly, remainder to the front — over shards with
// room, repeating until the budget is placed or every shard is full.
// The sharded candidate count then equals min(total, Σcaps), exactly
// the count a serial budgeted enumeration yields. The split depends
// only on the shard count and capacities, never on the worker count.
// A zero total means unbounded and yields all zeros.
func shardBudgets(total, shards int, caps []int) []int {
	out := make([]int, shards)
	if total <= 0 {
		return out
	}
	base, rem := total/shards, total%shards
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	if caps == nil {
		return out
	}
	surplus := 0
	for i := range out {
		if out[i] > caps[i] {
			surplus += out[i] - caps[i]
			out[i] = caps[i]
		}
	}
	for surplus > 0 {
		spare := 0
		for i := range out {
			if out[i] < caps[i] {
				spare++
			}
		}
		if spare == 0 {
			break // the whole space is smaller than the budget
		}
		give, giveRem := surplus/spare, surplus%spare
		seen := 0
		for i := range out {
			room := caps[i] - out[i]
			if room == 0 {
				continue
			}
			g := give
			if seen < giveRem {
				g++
			}
			seen++
			if g > room {
				g = room
			}
			out[i] += g
			surplus -= g
		}
	}
	return out
}

// findingStreamer reassembles concurrently produced findings into
// deterministic (shard, index, pass) order. The shard currently at the
// head of the order streams its findings straight through; later
// shards buffer until every earlier shard has finished, at which point
// their backlog flushes and they go live. With one worker nothing ever
// buffers.
type findingStreamer struct {
	mu      sync.Mutex
	ch      chan<- Finding
	next    int // lowest shard not yet finished: it streams live
	pending [][]Finding
	done    []bool
}

func newFindingStreamer(ch chan<- Finding, shards int) *findingStreamer {
	if ch == nil {
		return nil
	}
	return &findingStreamer{ch: ch, pending: make([][]Finding, shards), done: make([]bool, shards)}
}

// emit routes one finding: live when its shard holds the head of the
// order, buffered otherwise. Channel sends happen under the lock, so a
// slow consumer backpressures every shard — that is the memory bound.
func (st *findingStreamer) emit(shard int, f Finding) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if shard == st.next {
		st.ch <- f
	} else {
		st.pending[shard] = append(st.pending[shard], f)
	}
}

// finish marks a shard complete and advances the head past every
// finished shard, flushing the backlog of each shard the head lands
// on so its subsequent emits stream live.
func (st *findingStreamer) finish(shard int) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.done[shard] = true
	for st.next < len(st.done) && st.done[st.next] {
		st.next++
		if st.next < len(st.done) {
			for _, f := range st.pending[st.next] {
				st.ch <- f
			}
			st.pending[st.next] = nil
		}
	}
}

// close closes the stream channel (all shards must have finished).
func (st *findingStreamer) close() {
	if st != nil {
		close(st.ch)
	}
}

// progressSink fans shard-side counter updates into rate-limited
// Progress callbacks. Updates are atomic adds; the callback itself is
// serialized by mu.
type progressSink struct {
	fn     func(CampaignProgress)
	every  time.Duration
	shards int

	funcs        atomic.Uint64
	verified     atomic.Uint64
	refuted      atomic.Uint64
	inconclusive atomic.Uint64
	shardsDone   atomic.Int64

	last atomic.Int64 // unix nanos of the last callback
	mu   sync.Mutex
}

func newProgressSink(fn func(CampaignProgress), every time.Duration, shards int) *progressSink {
	if fn == nil {
		return nil
	}
	if every <= 0 {
		every = 100 * time.Millisecond
	}
	return &progressSink{fn: fn, every: every, shards: shards}
}

func (p *progressSink) snapshot() CampaignProgress {
	return CampaignProgress{
		Shards:       p.shards,
		ShardsDone:   int(p.shardsDone.Load()),
		Funcs:        p.funcs.Load(),
		Verified:     p.verified.Load(),
		Refuted:      p.refuted.Load(),
		Inconclusive: p.inconclusive.Load(),
	}
}

// tick fires the callback if the rate limit allows (always when force
// is set, for the final report).
func (p *progressSink) tick(force bool) {
	if p == nil {
		return
	}
	now := time.Now().UnixNano()
	last := p.last.Load()
	if !force {
		if now-last < int64(p.every) || !p.last.CompareAndSwap(last, now) {
			return
		}
	} else {
		p.last.Store(now)
	}
	p.mu.Lock()
	p.fn(p.snapshot())
	p.mu.Unlock()
}

// Run executes the campaign and returns the merged, deterministic
// result.
func (c Campaign) Run() Stats {
	shards := NumShards(c.Gen)
	var caps []int
	if c.Gen.MaxFuncs > 0 {
		caps = ShardCapacities(c.Gen, c.Gen.MaxFuncs)
	}
	budgets := shardBudgets(c.Gen.MaxFuncs, shards, caps)

	var memo *refine.Memo
	if c.MemoEntries >= 0 {
		memo = refine.NewMemo(c.MemoEntries)
	}

	// Warm start: install last run's snapshots before any shard runs.
	// A nil disk (no CacheDir) is a no-op throughout.
	cacheDir := c.CacheDir
	if cacheDir == "" {
		cacheDir = c.Refine.CacheDir
	}
	disk := refine.OpenDiskCache(cacheDir, memo)
	var diskErr error
	if _, err := disk.Load(); err != nil {
		diskErr = err
	}

	streamer := newFindingStreamer(c.Stream, shards)
	progress := newProgressSink(c.Progress, c.ProgressEvery, shards)
	var poolPM *parallel.PoolMetrics
	var runSpan *telemetry.Span
	if c.Telemetry != nil {
		poolPM = &parallel.PoolMetrics{}
		runSpan = telemetry.NewScope(c.Telemetry, "campaign").Start("run")
	}

	type shardStats struct {
		Stats
		Check refine.CheckMetrics
		Prog  core.ProgramCacheStats
	}
	results := parallel.MapTimed(c.Workers, shards, func(s int) shardStats {
		defer func() {
			streamer.finish(s)
			if progress != nil {
				progress.shardsDone.Add(1)
				progress.tick(false)
			}
		}()
		gen := c.Gen
		gen.MaxFuncs = budgets[s]
		if c.Gen.MaxFuncs > 0 && budgets[s] == 0 {
			return shardStats{} // budget exhausted before this shard
		}
		rcfg := c.Refine
		rcfg.Oracle = core.NewEnumOracle(rcfg.MaxChoices, rcfg.MaxFanout)
		rcfg.Memo = memo
		rcfg.Session = nil
		if memo != nil {
			rcfg.Session = memo.NewSession()
		}
		// Candidates and their transformed clones are built fresh and
		// never mutated after compilation, so the pointer-trusting
		// program cache is sound here; it pays off when one candidate is
		// checked against several passes.
		rcfg.Programs = core.NewProgramCache(0)

		// Each shard transform returns the pass names that changed the
		// candidate (pipeline campaigns only; nil otherwise).
		type shardTransform struct {
			name string
			fn   func(*ir.Func) []string
		}
		var transforms []shardTransform
		var pm *passes.PassManager
		switch {
		case len(c.Transforms) > 0:
			for _, tr := range c.Transforms {
				fn := tr.Fn
				transforms = append(transforms, shardTransform{name: tr.Name, fn: func(f *ir.Func) []string {
					if fn != nil {
						fn(f)
					}
					return nil
				}})
			}
		case c.Pipeline != nil:
			pm = c.Pipeline.Clone() // private per-shard stats, shared pass list
			transforms = []shardTransform{{fn: func(f *ir.Func) []string {
				_, fired := pm.RunFuncChanged(f, c.PipelineCfg)
				return fired
			}}}
		default:
			transforms = []shardTransform{{fn: func(f *ir.Func) []string {
				if c.Transform != nil {
					c.Transform(f)
				}
				return nil
			}}}
		}

		var st shardStats
		rcfg.Metrics = &st.Check
		var scratch PassTally // tally sink for single-transform campaigns
		if len(c.Transforms) > 0 {
			st.Passes = make([]PassTally, len(transforms))
			for i, tr := range transforms {
				st.Passes[i].Pass = tr.name
			}
		}
		idx := 0
		_, truncated := ExhaustiveShard(gen, s, func(f *ir.Func) bool {
			st.Funcs++
			for ti, tr := range transforms {
				work := ir.CloneFunc(f)
				changedBy := tr.fn(work)
				r := refine.Check(f, work, rcfg)
				tally := &scratch
				if st.Passes != nil {
					tally = &st.Passes[ti]
				}
				tally.Funcs++
				switch r.Status {
				case refine.Verified:
					st.Verified++
					tally.Verified++
					if progress != nil {
						progress.verified.Add(1)
					}
				case refine.Refuted:
					st.Refuted++
					tally.Refuted++
					if progress != nil {
						progress.refuted.Add(1)
					}
					fd := Finding{
						Shard: s, Index: idx, Pass: tr.name,
						ChangedBy: changedBy,
						Src:       f.String(), Tgt: work.String(),
						Result: r,
					}
					if streamer != nil {
						streamer.emit(s, fd)
					} else {
						st.Findings = append(st.Findings, fd)
					}
				default:
					st.Inconclusive++
					tally.Inconclusive++
					if progress != nil {
						progress.inconclusive.Add(1)
					}
				}
			}
			idx++
			if progress != nil {
				progress.funcs.Add(1)
				progress.tick(false)
			}
			return true
		})
		st.Truncated = truncated
		if pm != nil {
			st.Opt = pm.Stats
		}
		st.Prog = rcfg.Programs.Stats()
		return st
	}, poolPM)

	var out Stats
	if len(c.Transforms) > 0 {
		out.Passes = make([]PassTally, len(c.Transforms))
		for i, tr := range c.Transforms {
			out.Passes[i].Pass = tr.Name
		}
	}
	var check refine.CheckMetrics
	var prog core.ProgramCacheStats
	for _, r := range results {
		out.Funcs += r.Funcs
		out.Verified += r.Verified
		out.Refuted += r.Refuted
		out.Inconclusive += r.Inconclusive
		out.Truncated = out.Truncated || r.Truncated
		out.Findings = append(out.Findings, r.Findings...)
		for i, p := range r.Passes {
			out.Passes[i].Funcs += p.Funcs
			out.Passes[i].Verified += p.Verified
			out.Passes[i].Refuted += p.Refuted
			out.Passes[i].Inconclusive += p.Inconclusive
		}
		if r.Opt != nil {
			if out.Opt == nil {
				out.Opt = passes.NewStats()
			}
			out.Opt.Merge(r.Opt)
		}
		check.Add(&r.Check)
		prog.Add(r.Prog)
	}
	streamer.close()
	if memo != nil {
		out.MemoHits = memo.Hits()
		out.MemoLookups = memo.Lookups()
		out.MemoEvictions = memo.Evictions()
		out.MemoSets = memo.Len()
	}
	if disk != nil {
		if err := disk.Save(); err != nil && diskErr == nil {
			diskErr = err
		}
		ds := disk.Stats()
		out.DiskLoads, out.DiskHits, out.DiskStaleRejects = ds.Loads, ds.Hits, ds.StaleRejects
		out.DiskErr = diskErr
	}
	runSpan.End()
	c.publish(out, shards, &check, prog, poolPM, memo != nil, disk != nil)
	progress.tick(true)
	return out
}

// publish folds the campaign's merged collectors into c.Telemetry.
// Verdict counters and the per-shard checker/engine/program-cache
// counters are Deterministic (pure functions of the shard partition);
// everything touching the shared memo is Scheduling, because which
// worker computes a shared behaviour set first is a race whenever more
// than one runs — and the class must not depend on the worker count.
func (c Campaign) publish(out Stats, shards int, check *refine.CheckMetrics, prog core.ProgramCacheStats, poolPM *parallel.PoolMetrics, sharedMemo, diskCache bool) {
	reg := c.Telemetry
	if reg == nil {
		return
	}
	det := telemetry.Deterministic
	reg.Counter("campaign_shards_total", det, "enumeration shards run").Add(uint64(shards))
	reg.Counter("campaign_funcs_total", det, "candidate functions enumerated").Add(uint64(out.Funcs))
	reg.Counter("campaign_verified_total", det, "validations proved refining").Add(uint64(out.Verified))
	reg.Counter("campaign_refuted_total", det, "validations refuted (findings)").Add(uint64(out.Refuted))
	reg.Counter("campaign_inconclusive_total", det, "validations hitting resource caps").Add(uint64(out.Inconclusive))
	var trunc uint64
	if out.Truncated {
		trunc = 1
	}
	reg.Counter("campaign_truncated_total", det, "campaigns cut short by the budget").Add(trunc)

	memoClass := det
	if sharedMemo {
		memoClass = telemetry.Scheduling
	}
	check.Publish(reg, memoClass)
	prog.Publish(reg, det)
	if sharedMemo {
		reg.Counter("memo_lookups_total", telemetry.Scheduling, "shared-memo lookups").Add(out.MemoLookups)
		reg.Counter("memo_hits_total", telemetry.Scheduling, "shared-memo hits").Add(out.MemoHits)
		reg.Counter("memo_evictions_total", telemetry.Scheduling, "shared-memo evictions").Add(out.MemoEvictions)
		reg.Gauge("memo_sets", telemetry.Scheduling, "behaviour sets resident in the shared memo").Set(int64(out.MemoSets))
	}
	if diskCache {
		// Which lookups land on disk-loaded entries depends on worker
		// interleaving (and residency on eviction), so the disk split is
		// Scheduling like every shared-memo counter.
		cache.DiskStats{
			Loads:        out.DiskLoads,
			Hits:         out.DiskHits,
			StaleRejects: out.DiskStaleRejects,
		}.Publish(reg, telemetry.Scheduling)
	}
	poolPM.Publish(reg)
	if out.Opt != nil {
		reg.Merge(out.Opt.Registry())
	}
}
