package optfuzz

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tameir/internal/cache"
	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/parallel"
	"tameir/internal/passes"
	"tameir/internal/refine"
	"tameir/internal/telemetry"
	"tameir/internal/telemetry/trace"
)

// Campaign is one fuzz-and-validate run, the paper's §6 experiment as
// a pipeline: enumerate a workload's candidate stream, transform every
// candidate, and decide refinement of each transformation.
//
// The workload is a Source: a deterministic, shardable candidate
// stream. The default (nil Source) is the exhaustive §6 enumerator
// over Gen; the mutation fuzzer (NewMutationSource) and the sampled
// wide-bitwidth sweep (NewWideSource) plug into the same engine. A
// bounded worker pool runs the source's shards concurrently, each
// worker with its own enumeration oracle, compiled-program cache, and
// memo session, and results are merged in shard order. The
// behaviour-set memo itself is ONE concurrency-safe cache shared by
// all shards, so a candidate that collapses to a form some other shard
// already explored is a lookup, not a re-enumeration — cross-shard
// hits are a large fraction of the total on §6-style spaces, where
// most shards funnel into the same few small forms.
//
// Evolving sources run in epochs: every shard of epoch e completes,
// the per-candidate feedback merges in (shard, index) order — a
// deterministic barrier — and the source advances before epoch e+1
// enumerates. Coverage-guided mutation therefore sees exactly the same
// feedback stream for every worker count.
//
// A campaign's findings and verdict counters remain byte-identical for
// every worker count, including Workers=1 (which runs inline with no
// goroutines): a memo hit returns exactly the set enumeration would
// have produced, so sharing the memo affects speed, never results.
// Only the memo *statistics* (Stats.MemoHits and friends) depend on
// scheduling when Workers > 1, since which shard computes a shared set
// first is a race.
type Campaign struct {
	// Gen bounds the default exhaustive generator (used when Source is
	// nil). Gen.MaxFuncs is a campaign-wide budget split
	// deterministically across shards (by shard index, not by worker),
	// so the checked candidate set does not depend on the worker
	// count.
	Gen Config

	// Source selects the workload. Nil wraps Gen in an
	// ExhaustiveSource — the legacy §6 configuration, byte-identical
	// to the pre-interface engine. When Source is set, Gen is ignored.
	Source Source

	// Refine configures the checker. Its Memo, Session, Oracle and
	// Programs fields are ignored: the campaign supplies one shared
	// memo plus a private session, oracle and program cache per shard.
	// Refine.Tier is the campaign's execution-tier knob: it flows into
	// every shard's checker unchanged, so a campaign built on
	// refine.DefaultConfig auto-promotes hot candidates to the
	// bytecode VM (the promotions surface in the engine metrics).
	Refine refine.Config

	// Transform mutates a candidate in place; the campaign validates
	// original → transformed. The candidate passed in is already a
	// private clone. A nil Transform checks self-refinement.
	Transform func(*ir.Func)

	// Transforms, when non-empty, overrides Transform: every candidate
	// is validated against each named transform in order, §6-style
	// ("both individual passes and -O2"). The passes share the shard's
	// memo, so each candidate's source behaviour sets are derived once
	// and looked up for every subsequent pass — this is where
	// memoization pays, since an exhaustive generator never repeats a
	// source within one pass.
	Transforms []NamedTransform

	// Pipeline, when non-nil (and Transforms is empty), overrides
	// Transform: every candidate runs through a per-shard Clone of the
	// pass manager, so findings carry the names of the passes that
	// fired (Finding.ChangedBy) and, when the manager is instrumented,
	// per-shard Stats merge deterministically into the campaign's Opt.
	Pipeline *passes.PassManager

	// PipelineCfg is the pass configuration for Pipeline. Required when
	// Pipeline is set.
	PipelineCfg *passes.Config

	// Workers bounds pool concurrency; 0 means one per CPU, 1 is
	// serial.
	Workers int

	// MemoEntries bounds the campaign's shared behaviour-set memo. 0
	// means refine.DefaultMemoEntries; negative disables memoization.
	MemoEntries int

	// CacheDir, when non-empty, warm-starts the campaign from the
	// persistent snapshots in that directory (behaviour-set memo +
	// bytecode lowering metadata) and writes refreshed snapshots back
	// after the run. Snapshots are versioned and fingerprinted
	// (core.SemanticsFingerprint); stale or mismatched ones are
	// rejected wholesale, so a warm campaign's verdict stream is
	// byte-identical to a cold one (TestCacheDirWarmMatchesCold).
	// Falls back to Refine.CacheDir when empty.
	CacheDir string

	// Reduce pushes every refuted finding through the automatic
	// reducer before it is recorded or streamed: greedy instruction /
	// branch / operand shrinking, re-checking the refinement verdict
	// at every step, so the published counterexample is minimal while
	// still refuted by the same transform. The reduced finding is a
	// pure function of the candidate and the campaign configuration,
	// so reduction preserves the byte-identical-across-workers
	// guarantee.
	Reduce bool

	// ReduceMaxSteps bounds the reducer's accepted shrink steps per
	// finding (0 means DefaultReduceMaxSteps).
	ReduceMaxSteps int

	// TracePhases enables fine-grained span telemetry: one span per
	// shard enumeration (span="campaign/s<shard>") plus the per-phase
	// spans inside every refine.Check (compile and per-input behaviour
	// sweeps). Off by default: the spans are cheap but still cost
	// clock reads on the hot path, so benchmark rows (E11/E12) run
	// without them. Requires Telemetry.
	TracePhases bool

	// Trace, when non-nil, is the flight recorder: shard spans, check
	// phases, per-pass spans, tier promotions, program-cache hit/miss
	// instants, and one provenance-carrying "finding" instant per
	// finding all land in it, on one track per shard (plus a "campaign"
	// track for run-level events). Implies the TracePhases span sites
	// regardless of that flag. All trace data is scheduling-class: the
	// timeline is never reproducible across runs.
	Trace *trace.Recorder

	// Seed is the workload RNG seed, recorded in finding provenance
	// (the campaign itself never consumes it — sources are seeded at
	// construction).
	Seed int64

	// StallDeadline arms the stall watchdog: a shard silent for longer
	// than this (no candidate completed) dumps all goroutine stacks to
	// StallOut, writes an emergency trace snapshot to StallSnapshot,
	// and records a "watchdog_stall" instant instead of hanging
	// silently. Zero disables the watchdog. Heartbeat ages surface as
	// watchdog_beat_age_ms{shard=N} gauges and stall episodes as
	// watchdog_stalls_total in Telemetry.
	StallDeadline time.Duration

	// StallOut receives the watchdog's goroutine dumps (default
	// os.Stderr).
	StallOut io.Writer

	// StallSnapshot, when non-empty, is where the watchdog writes the
	// emergency Chrome-JSON trace snapshot on the first stall.
	StallSnapshot string

	// Telemetry, when non-nil, receives the campaign's merged metric
	// counters after the run: campaign_* verdicts, workload_* labelled
	// twins, per-shard checker and engine counters (check_*, engine_*,
	// pool_frames_*), per-shard program-cache traffic (progcache_*),
	// shared-memo counters (memo_*), worker-pool utilization (pool_*),
	// corpus/reducer counters for evolving or reducing campaigns, and
	// — for instrumented Pipeline campaigns — the merged pass-manager
	// registry (pass_*, opt_*, analysis_*). Shard-local collectors
	// merge in shard order; the registry's deterministic section is
	// byte-identical for every worker count.
	Telemetry *telemetry.Registry

	// Stream, when non-nil, receives every Finding in deterministic
	// (epoch, shard, index, pass) order while the campaign runs, and
	// is closed by Run before it returns. Streamed findings are NOT
	// retained in Stats.Findings, so a campaign with a draining
	// consumer holds at most the out-of-turn shards' findings in
	// memory — this is the report-early-and-bound-memory path for huge
	// campaigns. A slow consumer applies backpressure to the whole
	// pipeline.
	Stream chan<- Finding

	// Progress, when non-nil, is invoked from campaign goroutines —
	// rate-limited to ProgressEvery, serialized, plus once with the
	// final totals — as candidates are validated. Keep it fast; it runs
	// on the hot path's rate-limited edge.
	Progress func(CampaignProgress)

	// ProgressEvery rate-limits Progress callbacks; 0 means 100ms.
	ProgressEvery time.Duration
}

// CampaignProgress is a running snapshot handed to Progress callbacks.
// Counters are totals since the campaign started; Shards counts shard
// enumerations across all epochs.
type CampaignProgress struct {
	Shards     int
	ShardsDone int

	Funcs        uint64
	Verified     uint64
	Refuted      uint64
	Inconclusive uint64
}

// NamedTransform is one pass (or pipeline) under validation.
type NamedTransform struct {
	Name string
	Fn   func(*ir.Func)
}

// Finding is one refuted transformation.
type Finding struct {
	// Epoch is the source epoch that produced the candidate (always 0
	// for single-epoch workloads like the exhaustive enumerator).
	Epoch int
	// Shard and Index locate the candidate deterministically: Index is
	// its position within the shard's enumeration order for its epoch.
	Shard, Index int
	// Pass names the refuted transform (empty for a bare Transform).
	Pass string
	// ChangedBy lists the pipeline passes that reported a change on
	// this candidate, deduplicated, in first-fire order (only set for
	// Pipeline campaigns). The last CFG- or value-rewriting pass in the
	// list is the prime miscompilation suspect.
	ChangedBy []string
	// Src and Tgt are the printed functions. Under Campaign.Reduce
	// they are the reducer's minimized pair.
	Src, Tgt string
	// OrigSrc is the unreduced candidate when the reducer shrank this
	// finding (empty when reduction is off or made no progress).
	OrigSrc string
	// ReduceSteps is how many accepted shrink steps produced Src.
	ReduceSteps int
	// Result carries the counterexample.
	Result refine.Result
	// Prov records where the finding came from beyond the positional
	// fields above: workload, seed, tier, cache state at emission.
	// Always populated by the campaign; mirrored into the flight
	// recorder as a "finding" instant when Campaign.Trace is set, so a
	// trace alone explains every counterexample.
	Prov *Provenance
}

// Provenance is the cross-cutting context attached to each Finding.
// The positional coordinates (epoch, shard, index, pass, ChangedBy,
// reduce steps) live on the Finding itself; Provenance carries the
// campaign-level rest. Every field is deterministic — findings (and
// so their provenance) must stay DeepEqual across worker counts. The
// scheduling-dependent memo counters at sealing time appear only in
// the mirrored trace instant (`memo_lookups`/`memo_hits` args).
type Provenance struct {
	// Source names the workload; Seed is the campaign's RNG seed.
	Source string
	Seed   int64
	// Tier is the execution-tier mode the checker ran under.
	Tier string
	// DiskWarm is whether the campaign warm-started from persistent
	// cache snapshots.
	DiskWarm bool
}

// PassTally is one pass's slice of a multi-pass campaign.
type PassTally struct {
	Pass         string
	Funcs        int
	Verified     int
	Refuted      int
	Inconclusive int
}

// Stats aggregates a campaign. Funcs counts candidate functions once
// each; the verdict counters count (candidate, pass) validations, so
// with N transforms they sum to N×Funcs.
type Stats struct {
	Funcs        int
	Verified     int
	Refuted      int
	Inconclusive int
	Truncated    bool

	// Source names the workload that ran; Epochs is how many source
	// epochs it took (1 for non-evolving workloads).
	Source string
	Epochs int

	// CorpusSize / CoverageKeys are an evolving source's end-of-run
	// corpus statistics (zero for non-evolving workloads).
	CorpusSize   int
	CoverageKeys int

	// ReduceSteps / ReduceAttempts / ReduceRemovedInstrs /
	// ReducedFindings aggregate the automatic reducer: accepted shrink
	// steps, candidate edits re-checked, instructions removed, and
	// findings that passed through it (all zero unless
	// Campaign.Reduce).
	ReduceSteps         uint64
	ReduceAttempts      uint64
	ReduceRemovedInstrs uint64
	ReducedFindings     uint64

	// Passes tallies per transform, in Transforms order (absent for a
	// bare Transform campaign).
	Passes []PassTally

	// Findings lists every refuted candidate in deterministic
	// (epoch, shard, index, pass) order.
	Findings []Finding

	// MemoHits / MemoLookups / MemoEvictions are the shared memo's
	// counters after the run; MemoSets is how many behaviour sets it
	// ended up holding. Under Workers > 1 the hit/eviction split is
	// scheduling-dependent (the verdicts above are not).
	MemoHits      uint64
	MemoLookups   uint64
	MemoEvictions uint64
	MemoSets      int

	// DiskLoads / DiskHits / DiskStaleRejects are the persistent
	// -cache-dir counters: snapshot files loaded in full, memo hits
	// served by disk-loaded entries, snapshots rejected wholesale. All
	// zero without CacheDir.
	DiskLoads        uint64
	DiskHits         uint64
	DiskStaleRejects uint64
	// DiskErr records a failed snapshot load or save (I/O, not
	// staleness — staleness is a counted, non-error cold start). The
	// campaign's verdicts are unaffected; drivers surface it as a
	// warning.
	DiskErr error

	// Opt merges the per-shard pass-manager statistics in shard order
	// (nil unless the campaign ran an instrumented Pipeline).
	Opt *passes.Stats
}

// HitRate returns the memo hit fraction in [0, 1].
func (s Stats) HitRate() float64 {
	if s.MemoLookups == 0 {
		return 0
	}
	return float64(s.MemoHits) / float64(s.MemoLookups)
}

// shardBudgets splits a campaign-wide budget over shards:
// shard i receives total/shards plus one of the remainder's units.
// When caps (per-shard enumeration capacities) is non-nil, a second
// fill pass reclaims the budget that small shards cannot absorb and
// redistributes it — evenly, remainder to the front — over shards with
// room, repeating until the budget is placed or every shard is full.
// The sharded candidate count then equals min(total, Σcaps), exactly
// the count a serial budgeted enumeration yields. The split depends
// only on the shard count and capacities, never on the worker count.
// A zero total means unbounded and yields all zeros.
func shardBudgets(total, shards int, caps []int) []int {
	out := make([]int, shards)
	if total <= 0 {
		return out
	}
	base, rem := total/shards, total%shards
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	if caps == nil {
		return out
	}
	surplus := 0
	for i := range out {
		if out[i] > caps[i] {
			surplus += out[i] - caps[i]
			out[i] = caps[i]
		}
	}
	for surplus > 0 {
		spare := 0
		for i := range out {
			if out[i] < caps[i] {
				spare++
			}
		}
		if spare == 0 {
			break // the whole space is smaller than the budget
		}
		give, giveRem := surplus/spare, surplus%spare
		seen := 0
		for i := range out {
			room := caps[i] - out[i]
			if room == 0 {
				continue
			}
			g := give
			if seen < giveRem {
				g++
			}
			seen++
			if g > room {
				g = room
			}
			out[i] += g
			surplus -= g
		}
	}
	return out
}

// findingStreamer reassembles concurrently produced findings into
// deterministic (shard, index, pass) order within one epoch. The shard
// currently at the head of the order streams its findings straight
// through; later shards buffer until every earlier shard has finished,
// at which point their backlog flushes and they go live. With one
// worker nothing ever buffers. Epochs run sequentially, so one
// streamer per epoch over the same channel yields the global
// (epoch, shard, index, pass) order.
type findingStreamer struct {
	mu      sync.Mutex
	ch      chan<- Finding
	next    int // lowest shard not yet finished: it streams live
	pending [][]Finding
	done    []bool
}

func newFindingStreamer(ch chan<- Finding, shards int) *findingStreamer {
	if ch == nil {
		return nil
	}
	return &findingStreamer{ch: ch, pending: make([][]Finding, shards), done: make([]bool, shards)}
}

// emit routes one finding: live when its shard holds the head of the
// order, buffered otherwise. Channel sends happen under the lock, so a
// slow consumer backpressures every shard — that is the memory bound.
func (st *findingStreamer) emit(shard int, f Finding) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if shard == st.next {
		st.ch <- f
	} else {
		st.pending[shard] = append(st.pending[shard], f)
	}
}

// finish marks a shard complete and advances the head past every
// finished shard, flushing the backlog of each shard the head lands
// on so its subsequent emits stream live.
func (st *findingStreamer) finish(shard int) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.done[shard] = true
	for st.next < len(st.done) && st.done[st.next] {
		st.next++
		if st.next < len(st.done) {
			for _, f := range st.pending[st.next] {
				st.ch <- f
			}
			st.pending[st.next] = nil
		}
	}
}

// close closes the stream channel (all shards must have finished).
func (st *findingStreamer) close() {
	if st != nil {
		close(st.ch)
	}
}

// progressSink fans shard-side counter updates into rate-limited
// Progress callbacks. Updates are atomic adds; the callback itself is
// serialized by mu.
type progressSink struct {
	fn     func(CampaignProgress)
	every  time.Duration
	shards int

	funcs        atomic.Uint64
	verified     atomic.Uint64
	refuted      atomic.Uint64
	inconclusive atomic.Uint64
	shardsDone   atomic.Int64

	last atomic.Int64 // unix nanos of the last callback
	mu   sync.Mutex
}

func newProgressSink(fn func(CampaignProgress), every time.Duration, shards int) *progressSink {
	if fn == nil {
		return nil
	}
	if every <= 0 {
		every = 100 * time.Millisecond
	}
	return &progressSink{fn: fn, every: every, shards: shards}
}

func (p *progressSink) snapshot() CampaignProgress {
	return CampaignProgress{
		Shards:       p.shards,
		ShardsDone:   int(p.shardsDone.Load()),
		Funcs:        p.funcs.Load(),
		Verified:     p.verified.Load(),
		Refuted:      p.refuted.Load(),
		Inconclusive: p.inconclusive.Load(),
	}
}

// tick fires the callback if the rate limit allows (always when force
// is set, for the final report).
func (p *progressSink) tick(force bool) {
	if p == nil {
		return
	}
	now := time.Now().UnixNano()
	last := p.last.Load()
	if !force {
		if now-last < int64(p.every) || !p.last.CompareAndSwap(last, now) {
			return
		}
	} else {
		p.last.Store(now)
	}
	p.mu.Lock()
	p.fn(p.snapshot())
	p.mu.Unlock()
}

// mergeChanged folds more into acc, deduplicating while preserving
// first-fire order — the same discipline the pass manager uses for a
// single run, applied across a candidate's transforms.
func mergeChanged(acc, more []string) []string {
	for _, m := range more {
		dup := false
		for _, a := range acc {
			if a == m {
				dup = true
				break
			}
		}
		if !dup {
			acc = append(acc, m)
		}
	}
	return acc
}

// shardStats is one shard's slice of one epoch.
type shardStats struct {
	Stats
	Check refine.CheckMetrics
	Prog  core.ProgramCacheStats
	fb    []Feedback
}

// Run executes the campaign and returns the merged, deterministic
// result.
func (c Campaign) Run() Stats {
	src := c.Source
	if src == nil {
		src = NewExhaustiveSource(c.Gen)
	}
	shards := src.Shards()
	budget := src.Budget()
	var caps []int
	if budget > 0 {
		caps = src.Capacities(budget)
	}
	budgets := shardBudgets(budget, shards, caps)

	epochs := 1
	evolving, _ := src.(Evolving)
	if evolving != nil {
		if e := evolving.Epochs(); e > 1 {
			epochs = e
		}
	}

	var memo *refine.Memo
	if c.MemoEntries >= 0 {
		memo = refine.NewMemo(c.MemoEntries)
	}

	// Warm start: install last run's snapshots before any shard runs.
	// A nil disk (no CacheDir) is a no-op throughout.
	cacheDir := c.CacheDir
	if cacheDir == "" {
		cacheDir = c.Refine.CacheDir
	}
	disk := refine.OpenDiskCache(cacheDir, memo)
	var diskErr error
	if _, err := disk.Load(); err != nil {
		diskErr = err
	}

	progress := newProgressSink(c.Progress, c.ProgressEvery, shards*epochs)
	var poolPM *parallel.PoolMetrics
	var runSpan *telemetry.Span
	var shardScope, checkScope, passScope *telemetry.Scope
	if c.Telemetry != nil {
		poolPM = &parallel.PoolMetrics{}
	}
	if c.Telemetry != nil || c.Trace != nil {
		// Spans need a registry for their histograms even in a
		// trace-only run; a throwaway one keeps the recorder fed
		// without publishing anywhere.
		sreg := c.Telemetry
		if sreg == nil {
			sreg = telemetry.NewRegistry()
		}
		scope := telemetry.NewScope(sreg, "campaign")
		// Run-level events go on the track after the last shard.
		runSpan = scope.WithTrace(c.Trace, shards).Start("run")
		if c.TracePhases || c.Trace != nil {
			shardScope = scope
			checkScope = telemetry.NewScope(sreg, "check")
			passScope = telemetry.NewScope(sreg, "pass")
		}
	}
	if c.Trace != nil {
		for s := 0; s < shards; s++ {
			c.Trace.SetTrackName(s, fmt.Sprintf("shard %d", s))
		}
		c.Trace.SetTrackName(shards, "campaign")
	}

	var wd *trace.Watchdog
	if c.StallDeadline > 0 {
		treg := c.Telemetry // nil registry is a valid no-op sink
		wd = trace.StartWatchdog(trace.WatchdogConfig{
			Tracks:       shards,
			Deadline:     c.StallDeadline,
			Rec:          c.Trace,
			StacksTo:     c.StallOut,
			SnapshotPath: c.StallSnapshot,
			OnBeatAge: func(track int, age time.Duration) {
				treg.Gauge(
					telemetry.L("watchdog_beat_age_ms", "shard", strconv.Itoa(track)),
					telemetry.Scheduling,
					"ms since the shard's last completed candidate",
				).Set(age.Milliseconds())
			},
		})
		defer wd.Stop()
	}

	prov := Provenance{
		Source:   src.Name(),
		Seed:     c.Seed,
		Tier:     c.Refine.Tier.Mode.String(),
		DiskWarm: disk.Stats().Loads > 0,
	}

	// The reducer re-verifies every shrunken candidate against the
	// dialect the campaign checks under.
	verifyMode := ir.VerifyFreeze
	if c.Refine.SrcOpts.Mode == core.Legacy {
		verifyMode = ir.VerifyLegacy
	}

	var out Stats
	if len(c.Transforms) > 0 {
		out.Passes = make([]PassTally, len(c.Transforms))
		for i, tr := range c.Transforms {
			out.Passes[i].Pass = tr.Name
		}
	}
	var check refine.CheckMetrics
	var prog core.ProgramCacheStats
	var streamer *findingStreamer

	for epoch := 0; epoch < epochs; epoch++ {
		epoch := epoch
		streamer = newFindingStreamer(c.Stream, shards)
		results := parallel.MapTimed(c.Workers, shards, func(s int) shardStats {
			return c.runShard(src, evolving, epoch, s, budget, budgets[s],
				memo, verifyMode, streamer, progress,
				shardScope, checkScope, passScope, wd, &prov)
		}, poolPM)

		for _, r := range results {
			out.Funcs += r.Funcs
			out.Verified += r.Verified
			out.Refuted += r.Refuted
			out.Inconclusive += r.Inconclusive
			out.Truncated = out.Truncated || r.Truncated
			out.Findings = append(out.Findings, r.Findings...)
			out.ReduceSteps += r.ReduceSteps
			out.ReduceAttempts += r.ReduceAttempts
			out.ReduceRemovedInstrs += r.ReduceRemovedInstrs
			out.ReducedFindings += r.ReducedFindings
			for i, p := range r.Passes {
				out.Passes[i].Funcs += p.Funcs
				out.Passes[i].Verified += p.Verified
				out.Passes[i].Refuted += p.Refuted
				out.Passes[i].Inconclusive += p.Inconclusive
			}
			if r.Opt != nil {
				if out.Opt == nil {
					out.Opt = passes.NewStats()
				}
				out.Opt.Merge(r.Opt)
			}
			check.Add(&r.Check)
			prog.Add(r.Prog)
		}
		if evolving != nil {
			// The feedback barrier: shard order, then index order within
			// each shard — the same total order a serial run observes.
			var fb []Feedback
			for _, r := range results {
				fb = append(fb, r.fb...)
			}
			evolving.Advance(epoch, fb)
		}
	}
	streamer.close()
	if memo != nil {
		out.MemoHits = memo.Hits()
		out.MemoLookups = memo.Lookups()
		out.MemoEvictions = memo.Evictions()
		out.MemoSets = memo.Len()
	}
	if disk != nil {
		if err := disk.Save(); err != nil && diskErr == nil {
			diskErr = err
		}
		ds := disk.Stats()
		out.DiskLoads, out.DiskHits, out.DiskStaleRejects = ds.Loads, ds.Hits, ds.StaleRejects
		out.DiskErr = diskErr
	}
	out.Source = src.Name()
	out.Epochs = epochs
	corpus := false
	if cr, ok := src.(CorpusReporter); ok {
		cs := cr.CorpusStats()
		out.CorpusSize, out.CoverageKeys = cs.Size, cs.Coverage
		corpus = true
	}
	runSpan.End()
	if c.Trace != nil {
		// Final counter samples on the campaign track: the values CI
		// assertions read back from the trace alone (one "finding"
		// instant was emitted per finding, so
		// instants(finding)==counter(findings) must hold unless the
		// ring wrapped).
		c.Trace.Counter(shards, "findings", int64(out.Refuted))
		c.Trace.Counter(shards, "funcs", int64(out.Funcs))
	}
	c.publish(out, shards*epochs, &check, prog, poolPM, memo != nil, disk != nil, corpus)
	if c.Telemetry != nil {
		if wd != nil {
			c.Telemetry.Counter("watchdog_stalls_total", telemetry.Scheduling,
				"stall episodes the watchdog fired on").Add(wd.Stalls())
		}
		if c.Trace != nil {
			c.Telemetry.Counter("trace_events_total", telemetry.Scheduling,
				"events resident in the flight recorder after the run").Add(uint64(len(c.Trace.Events())))
			c.Telemetry.Counter("trace_dropped_total", telemetry.Scheduling,
				"events overwritten by flight-recorder ring wrap").Add(c.Trace.Dropped())
		}
	}
	progress.tick(true)
	return out
}

// runShard enumerates one shard of one epoch, validating every
// candidate against the campaign's transforms. It owns all its mutable
// state (oracle, memo session, program cache, pass-manager clone), so
// distinct shards run concurrently without sharing.
func (c Campaign) runShard(src Source, evolving Evolving, epoch, s, budget, max int,
	memo *refine.Memo, verifyMode ir.VerifyMode, streamer *findingStreamer,
	progress *progressSink, shardScope, checkScope, passScope *telemetry.Scope,
	wd *trace.Watchdog, prov *Provenance) shardStats {
	defer func() {
		wd.Done(s)
		streamer.finish(s)
		if progress != nil {
			progress.shardsDone.Add(1)
			progress.tick(false)
		}
	}()
	if budget > 0 && max == 0 {
		return shardStats{} // budget exhausted before this shard
	}
	// Bind this shard's events to its own recorder track. WithTrace is
	// a no-op when the campaign has no recorder, so the TracePhases-
	// only configuration keeps its histogram-only spans.
	shardScope = shardScope.WithTrace(c.Trace, s)
	checkScope = checkScope.WithTrace(c.Trace, s)
	passScope = passScope.WithTrace(c.Trace, s)
	wd.Beat(s)
	if shardScope != nil {
		defer shardScope.Start(fmt.Sprintf("s%d", s)).End()
	}
	rcfg := c.Refine
	rcfg.Oracle = core.NewEnumOracle(rcfg.MaxChoices, rcfg.MaxFanout)
	rcfg.Memo = memo
	rcfg.Session = nil
	if memo != nil {
		rcfg.Session = memo.NewSession()
	}
	// Candidates and their transformed clones are built fresh and
	// never mutated after compilation, so the pointer-trusting
	// program cache is sound here; it pays off when one candidate is
	// checked against several passes.
	rcfg.Programs = core.NewProgramCache(0)
	if rec := c.Trace; rec != nil {
		rcfg.Programs.SetEvents(func(hit bool, fn string) {
			name := "progcache_miss"
			if hit {
				name = "progcache_hit"
			}
			rec.Instant(s, name, "fn", fn)
		})
	}
	if checkScope != nil {
		rcfg.Trace = checkScope
	}

	// Each shard transform returns the pass names that changed the
	// candidate (pipeline campaigns only; nil otherwise).
	type shardTransform struct {
		name string
		fn   func(*ir.Func) []string
	}
	var transforms []shardTransform
	var pm *passes.PassManager
	switch {
	case len(c.Transforms) > 0:
		for _, tr := range c.Transforms {
			fn := tr.Fn
			transforms = append(transforms, shardTransform{name: tr.Name, fn: func(f *ir.Func) []string {
				if fn != nil {
					fn(f)
				}
				return nil
			}})
		}
	case c.Pipeline != nil:
		pm = c.Pipeline.Clone() // private per-shard stats, shared pass list
		pm.Trace = passScope    // per-pass spans ("pass/<name>") on this shard's track
		transforms = []shardTransform{{fn: func(f *ir.Func) []string {
			_, fired := pm.RunFuncChanged(f, c.PipelineCfg)
			return fired
		}}}
	default:
		transforms = []shardTransform{{fn: func(f *ir.Func) []string {
			if c.Transform != nil {
				c.Transform(f)
			}
			return nil
		}}}
	}

	var st shardStats
	rcfg.Metrics = &st.Check

	// For evolving sources, fold every behaviour set the checker
	// consumes into a per-candidate coverage digest. Memo hits return
	// exactly the set enumeration would produce, so the digest is
	// cache- and worker-independent.
	userHook := rcfg.BehaviorHook
	var digest uint64
	if evolving != nil {
		rcfg.BehaviorHook = func(b refine.BehaviorSet) {
			digest = behaviorDigest(digest, b)
			if userHook != nil {
				userHook(b)
			}
		}
	}
	// The reducer runs extra checks per finding; keep them out of the
	// candidate's coverage digest.
	rrcfg := rcfg
	rrcfg.BehaviorHook = userHook

	var scratch PassTally // tally sink for single-transform campaigns
	if len(c.Transforms) > 0 {
		st.Passes = make([]PassTally, len(transforms))
		for i, tr := range transforms {
			st.Passes[i].Pass = tr.name
		}
	}
	idx := 0
	_, truncated := src.Enumerate(s, max, func(f *ir.Func) bool {
		st.Funcs++
		digest = 0
		var fbChanged []string
		fbRefuted, fbInconclusive := false, false
		for ti, tr := range transforms {
			work := ir.CloneFunc(f)
			changedBy := tr.fn(work)
			r := refine.Check(f, work, rcfg)
			tally := &scratch
			if st.Passes != nil {
				tally = &st.Passes[ti]
			}
			tally.Funcs++
			switch r.Status {
			case refine.Verified:
				st.Verified++
				tally.Verified++
				if progress != nil {
					progress.verified.Add(1)
				}
			case refine.Refuted:
				st.Refuted++
				tally.Refuted++
				fbRefuted = true
				if progress != nil {
					progress.refuted.Add(1)
				}
				fd := Finding{
					Epoch: epoch, Shard: s, Index: idx, Pass: tr.name,
					ChangedBy: changedBy,
					Src:       f.String(), Tgt: work.String(),
					Result: r,
				}
				if c.Reduce {
					rr := ReduceFinding(f, tr.fn, rrcfg, verifyMode, c.ReduceMaxSteps)
					st.ReduceSteps += uint64(rr.Steps)
					st.ReduceAttempts += uint64(rr.Attempts)
					st.ReduceRemovedInstrs += uint64(rr.RemovedInstrs)
					st.ReducedFindings++
					if rr.Steps > 0 {
						fd.OrigSrc = fd.Src
						fd.ReduceSteps = rr.Steps
						fd.Src, fd.Tgt = rr.Src, rr.Tgt
						fd.ChangedBy = rr.ChangedBy
						fd.Result = rr.Result
					}
				}
				p := *prov
				fd.Prov = &p
				// The memo counters at sealing are scheduling-dependent
				// (which worker derives a shared set first is a race), so
				// they go into the trace record only — Finding.Prov stays
				// deterministic, like every other field DeepEqual'd by the
				// across-workers tests.
				var memoLookups, memoHits uint64
				if memo != nil {
					memoLookups, memoHits = memo.Lookups(), memo.Hits()
				}
				// Pinned: provenance must survive ring wrap so the trace
				// always explains every finding (and CI can assert
				// instants(finding)==counter(findings)).
				c.Trace.InstantPinned(s, "finding",
					"epoch", strconv.Itoa(epoch),
					"shard", strconv.Itoa(s),
					"index", strconv.Itoa(idx),
					"pass", fd.Pass,
					"changed_by", strings.Join(fd.ChangedBy, ","),
					"source", p.Source,
					"seed", strconv.FormatInt(p.Seed, 10),
					"tier", p.Tier,
					"memo_lookups", strconv.FormatUint(memoLookups, 10),
					"memo_hits", strconv.FormatUint(memoHits, 10),
					"disk_warm", strconv.FormatBool(p.DiskWarm),
					"reduce_steps", strconv.Itoa(fd.ReduceSteps))
				if streamer != nil {
					streamer.emit(s, fd)
				} else {
					st.Findings = append(st.Findings, fd)
				}
			default:
				st.Inconclusive++
				tally.Inconclusive++
				fbInconclusive = true
				if progress != nil {
					progress.inconclusive.Add(1)
				}
			}
			if evolving != nil {
				fbChanged = mergeChanged(fbChanged, changedBy)
			}
		}
		if evolving != nil {
			st.fb = append(st.fb, Feedback{
				Shard: s, Index: idx, Src: f.String(),
				ChangedBy: fbChanged,
				Refuted:   fbRefuted, Inconclusive: fbInconclusive,
				Behavior: digest,
			})
		}
		idx++
		wd.Beat(s)
		if progress != nil {
			progress.funcs.Add(1)
			progress.tick(false)
		}
		return true
	})
	st.Truncated = truncated
	if pm != nil {
		st.Opt = pm.Stats
	}
	st.Prog = rcfg.Programs.Stats()
	return st
}

// publish folds the campaign's merged collectors into c.Telemetry.
// Verdict counters, the workload-labelled twins, the corpus/reducer
// counters, and the per-shard checker/engine/program-cache counters
// are Deterministic (pure functions of the shard partition); everything
// touching the shared memo is Scheduling, because which worker computes
// a shared behaviour set first is a race whenever more than one runs —
// and the class must not depend on the worker count.
func (c Campaign) publish(out Stats, shardRuns int, check *refine.CheckMetrics, prog core.ProgramCacheStats, poolPM *parallel.PoolMetrics, sharedMemo, diskCache, corpus bool) {
	reg := c.Telemetry
	if reg == nil {
		return
	}
	det := telemetry.Deterministic
	reg.Counter("campaign_shards_total", det, "shard enumerations run").Add(uint64(shardRuns))
	reg.Counter("campaign_funcs_total", det, "candidate functions enumerated").Add(uint64(out.Funcs))
	reg.Counter("campaign_verified_total", det, "validations proved refining").Add(uint64(out.Verified))
	reg.Counter("campaign_refuted_total", det, "validations refuted (findings)").Add(uint64(out.Refuted))
	reg.Counter("campaign_inconclusive_total", det, "validations hitting resource caps").Add(uint64(out.Inconclusive))
	var trunc uint64
	if out.Truncated {
		trunc = 1
	}
	reg.Counter("campaign_truncated_total", det, "campaigns cut short by the budget").Add(trunc)

	// Workload-labelled twins: the same verdict stream keyed by the
	// Source's name, so multi-workload processes (tame-bench E13)
	// stay separable in one snapshot.
	wl := func(name string) string { return telemetry.L(name, "workload", out.Source) }
	reg.Counter(wl("workload_funcs_total"), det, "candidates enumerated, by workload").Add(uint64(out.Funcs))
	reg.Counter(wl("workload_refuted_total"), det, "refuted validations, by workload").Add(uint64(out.Refuted))
	reg.Counter(wl("workload_epochs_total"), det, "source epochs run, by workload").Add(uint64(out.Epochs))
	if corpus {
		reg.Gauge("corpus_size", det, "functions resident in the mutation corpus").Set(int64(out.CorpusSize))
		reg.Gauge("coverage_keys", det, "distinct coverage keys observed").Set(int64(out.CoverageKeys))
	}
	if c.Reduce {
		reg.Counter("reduce_steps_total", det, "accepted reducer shrink steps").Add(out.ReduceSteps)
		reg.Counter("reduce_attempts_total", det, "reducer candidate edits re-checked").Add(out.ReduceAttempts)
		reg.Counter("reduce_removed_instrs_total", det, "instructions removed from findings by the reducer").Add(out.ReduceRemovedInstrs)
		reg.Counter("reduce_findings_total", det, "findings passed through the reducer").Add(out.ReducedFindings)
	}

	memoClass := det
	if sharedMemo {
		memoClass = telemetry.Scheduling
	}
	check.Publish(reg, memoClass)
	prog.Publish(reg, det)
	if sharedMemo {
		reg.Counter("memo_lookups_total", telemetry.Scheduling, "shared-memo lookups").Add(out.MemoLookups)
		reg.Counter("memo_hits_total", telemetry.Scheduling, "shared-memo hits").Add(out.MemoHits)
		reg.Counter("memo_evictions_total", telemetry.Scheduling, "shared-memo evictions").Add(out.MemoEvictions)
		reg.Gauge("memo_sets", telemetry.Scheduling, "behaviour sets resident in the shared memo").Set(int64(out.MemoSets))
	}
	if diskCache {
		// Which lookups land on disk-loaded entries depends on worker
		// interleaving (and residency on eviction), so the disk split is
		// Scheduling like every shared-memo counter.
		cache.DiskStats{
			Loads:        out.DiskLoads,
			Hits:         out.DiskHits,
			StaleRejects: out.DiskStaleRejects,
		}.Publish(reg, telemetry.Scheduling)
	}
	poolPM.Publish(reg)
	if out.Opt != nil {
		reg.Merge(out.Opt.Registry())
	}
}
