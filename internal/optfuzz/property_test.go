package optfuzz

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/mi"
	"tameir/internal/refine"
	"tameir/internal/target"
)

// Property: print → parse → print is stable on randomly generated CFG
// functions (the parser accepts everything the printer emits).
func TestRandomPrintParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fn := Random(rng, DefaultRandomConfig())
		text := "define" + fn.String()[len("define"):]
		re, err := ir.ParseFunc(text)
		if err != nil {
			t.Logf("parse failed: %v\n%s", err, text)
			return false
		}
		return re.String() == fn.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every function refines itself (refinement is reflexive),
// including functions with undef, poison and freeze.
func TestRandomSelfRefinement(t *testing.T) {
	legacy := core.LegacyOptions(core.BranchPoisonNondet)
	cfg := refine.DefaultConfig(legacy, legacy)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 120; i++ {
		fn := Random(rng, DefaultRandomConfig())
		r := refine.Check(fn, fn, cfg)
		if r.Status == refine.Refuted {
			t.Fatalf("self-refinement refuted on iteration %d:\n%s\n%s", i, fn, r)
		}
	}
}

// Property: cloning is semantically transparent — the clone has the
// same behaviour set on every input.
func TestRandomCloneEquivalence(t *testing.T) {
	legacy := core.LegacyOptions(core.BranchPoisonNondet)
	cfg := refine.DefaultConfig(legacy, legacy)
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 80; i++ {
		fn := Random(rng, DefaultRandomConfig())
		cl := ir.CloneFunc(fn)
		r1 := refine.Check(fn, cl, cfg)
		r2 := refine.Check(cl, fn, cfg)
		if r1.Status == refine.Refuted || r2.Status == refine.Refuted {
			t.Fatalf("clone not equivalent on iteration %d:\n%s\n→ %s / %s", i, fn, r1, r2)
		}
	}
}

// Property (differential backend testing): for deterministic random
// functions (no undef/poison/freeze leaves), the VX64 backend agrees
// with the interpreter on concrete inputs whenever the interpreter's
// result is fully defined.
func TestRandomBackendDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	rcfg := DefaultRandomConfig()
	rcfg.Width = 8
	rcfg.AllowUndef = false
	rcfg.AllowPoison = false
	rcfg.AllowFreeze = false
	checked := 0
	for i := 0; i < 200; i++ {
		fn := Random(rng, rcfg)
		mod := ir.NewModule()
		mod.AddFunc(fn)
		prog, err := mi.CompileModule(mod)
		if err != nil {
			t.Fatalf("iteration %d: backend: %v\n%s", i, err, fn)
		}
		for trial := 0; trial < 4; trial++ {
			a := uint64(rng.Intn(256))
			b := uint64(rng.Intn(256))
			out := core.Exec(fn,
				[]core.Value{core.VC(ir.I8, a), core.VC(ir.I8, b)},
				core.ZeroOracle{}, core.FreezeOptions())
			if out.Kind != core.OutRet || !out.Val.IsConcrete() {
				continue // poison (nsw) or UB (division): sim behaviour unconstrained
			}
			m := target.NewMachine(prog)
			for _, arg := range []uint64{b, a} { // push right-to-left
				m.Regs[target.SP] -= 8
				for by := uint(0); by < 8; by++ {
					m.Mem[m.Regs[target.SP]+uint64(by)] = byte(arg >> (8 * by))
				}
			}
			got, err := m.Run(0)
			if err != nil {
				t.Fatalf("iteration %d: simulate: %v\n%s", i, err, fn)
			}
			if got != out.Val.Uint() {
				t.Fatalf("iteration %d: f(%d,%d): simulator %d, interpreter %d\n%s",
					i, a, b, got, out.Val.Uint(), fn)
			}
			checked++
		}
	}
	if checked < 100 {
		t.Errorf("only %d defined executions compared; generator too UB-happy", checked)
	}
}
