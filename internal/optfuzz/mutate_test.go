package optfuzz

import (
	"fmt"
	"reflect"
	"testing"

	"tameir/internal/analysis"
	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/passes"
	"tameir/internal/refine"
)

func mutationCampaign(workers int) Campaign {
	sem := core.LegacyOptions(core.BranchPoisonNondet)
	pcfg := passes.DefaultLegacyConfig()
	pcfg.Unsound = true
	// Sized for the race detector: CFG mutants with loops cost ~1
	// refine.Check per second under -race on one core, so the three
	// worker counts below must share a small candidate stream. The
	// full-size determinism cmp (epochs 3, 60/epoch, workers 2 vs 8)
	// runs in `make ci` via the ci-workload target instead.
	mcfg := DefaultMutationConfig(42)
	mcfg.Mode = ir.VerifyLegacy
	mcfg.Epochs = 2
	mcfg.PerEpoch = 30
	mcfg.SeedFuncs = 20
	mcfg.Shards = 6
	return Campaign{
		Source:         NewMutationSource(mcfg),
		Refine:         refine.DefaultConfig(sem, sem),
		Pipeline:       passes.O2(),
		PipelineCfg:    pcfg,
		Workers:        workers,
		Reduce:         true,
		ReduceMaxSteps: 8,
	}
}

// TestMutationDeterministicAcrossWorkers is the coverage-guided
// analogue of the exhaustive determinism guarantee: same seed, any
// worker count, byte-identical reduced findings and corpus state.
func TestMutationDeterministicAcrossWorkers(t *testing.T) {
	var base Stats
	for i, w := range []int{1, 2, 8} {
		st := mutationCampaign(w).Run()
		// Memo statistics are scheduling-dependent by contract; blank
		// them before comparing.
		st.MemoHits, st.MemoLookups, st.MemoEvictions, st.MemoSets = 0, 0, 0, 0
		st.Opt = nil // pass-stats include wall-clock timings
		if i == 0 {
			base = st
			continue
		}
		if !reflect.DeepEqual(base.Findings, st.Findings) {
			t.Fatalf("workers=%d findings diverge from workers=1 (%d vs %d)", w, len(st.Findings), len(base.Findings))
		}
		bs, ss := base, st
		bs.Findings, ss.Findings = nil, nil
		if !reflect.DeepEqual(bs, ss) {
			t.Fatalf("workers=%d stats diverge:\nw1: %+v\nw%d: %+v", w, bs, w, ss)
		}
	}
	if base.Source != "mutate" || base.Epochs != 2 {
		t.Fatalf("workload identity: %q/%d", base.Source, base.Epochs)
	}
	if base.CorpusSize == 0 || base.CoverageKeys == 0 {
		t.Fatalf("corpus never grew: size=%d coverage=%d", base.CorpusSize, base.CoverageKeys)
	}
	if base.Refuted == 0 {
		t.Fatal("unsound pipeline produced no refuted findings under mutation")
	}
	if base.ReducedFindings == 0 {
		t.Fatal("reducer never ran despite Reduce: true and refuted findings")
	}
	for _, f := range base.Findings {
		if f.Result.Status != refine.Refuted {
			t.Fatalf("finding not refuted after reduction: %+v", f)
		}
		if f.ReduceSteps > 0 && f.OrigSrc == "" {
			t.Fatalf("reduced finding lost its original source: %+v", f)
		}
	}
}

// TestMutantsVerifierValid walks every epoch's candidate stream by
// hand and checks the mutator contract: every emitted function passes
// the dialect verifier and SSA dominance checking, and later epochs
// actually grow control flow beyond the straight-line seeds.
func TestMutantsVerifierValid(t *testing.T) {
	mcfg := DefaultMutationConfig(7)
	mcfg.Mode = ir.VerifyLegacy
	mcfg.Epochs = 4
	mcfg.PerEpoch = 120
	mcfg.SeedFuncs = 30
	src := NewMutationSource(mcfg)

	sawCFG, sawPhi := false, false
	for epoch := 0; epoch < src.Epochs(); epoch++ {
		var fb []Feedback
		for s := 0; s < src.Shards(); s++ {
			idx := 0
			src.Enumerate(s, 0, func(f *ir.Func) bool {
				if err := ir.Verify(f, ir.VerifyLegacy); err != nil {
					t.Fatalf("epoch %d shard %d: invalid mutant: %v\n%s", epoch, s, err, f)
				}
				if err := analysis.VerifySSA(f); err != nil {
					t.Fatalf("epoch %d shard %d: SSA violation: %v\n%s", epoch, s, err, f)
				}
				if len(f.Blocks) > 1 {
					sawCFG = true
				}
				for _, b := range f.Blocks {
					if len(b.Phis()) > 0 {
						sawPhi = true
					}
				}
				// Synthetic novelty: everything is interesting, so the
				// corpus fills and mutation proceeds from rich parents.
				fb = append(fb, Feedback{Shard: s, Index: idx, Src: f.String(), Behavior: uint64(idx + 1)})
				idx++
				return true
			})
		}
		src.Advance(epoch, fb)
	}
	if !sawCFG {
		t.Fatal("no mutant ever grew control flow")
	}
	if !sawPhi {
		t.Fatal("no mutant ever introduced a phi")
	}
	if src.CorpusStats().Size == 0 {
		t.Fatal("corpus empty after full run")
	}
}

// TestMutationSourceSameSeedSameStream pins stream-level determinism
// without a campaign: two sources with the same config emit the same
// candidates, and different seeds diverge.
func TestMutationSourceSameSeedSameStream(t *testing.T) {
	stream := func(seed int64) []string {
		mcfg := DefaultMutationConfig(seed)
		mcfg.Epochs = 2
		mcfg.PerEpoch = 50
		mcfg.SeedFuncs = 20
		src := NewMutationSource(mcfg)
		var out []string
		for epoch := 0; epoch < src.Epochs(); epoch++ {
			var fb []Feedback
			for s := 0; s < src.Shards(); s++ {
				idx := 0
				src.Enumerate(s, 0, func(f *ir.Func) bool {
					out = append(out, f.String())
					fb = append(fb, Feedback{Shard: s, Index: idx, Src: f.String(), Behavior: uint64(len(out))})
					idx++
					return true
				})
			}
			src.Advance(epoch, fb)
		}
		return out
	}
	a, b := stream(1), stream(1)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different streams")
	}
	c := stream(2)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams (rng not wired through)")
	}
}

// TestCorpusRoundTrip checks SaveCorpus/LoadCorpus through the real
// parser, including the rename to unique symbols.
func TestCorpusRoundTrip(t *testing.T) {
	mcfg := DefaultMutationConfig(3)
	mcfg.Epochs = 2
	mcfg.PerEpoch = 30
	mcfg.SeedFuncs = 25
	src := NewMutationSource(mcfg)
	var fb []Feedback
	for s := 0; s < src.Shards(); s++ {
		idx := 0
		src.Enumerate(s, 0, func(f *ir.Func) bool {
			fb = append(fb, Feedback{Shard: s, Index: idx, Src: f.String(), Behavior: uint64(idx + 100*s + 1)})
			idx++
			return true
		})
	}
	src.Advance(0, fb)
	corpus := src.Corpus()
	if len(corpus) == 0 {
		t.Fatal("no corpus to round-trip")
	}
	path := t.TempDir() + "/corpus.ll"
	if err := SaveCorpus(path, corpus); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(corpus) {
		t.Fatalf("round-trip lost functions: %d vs %d", len(loaded), len(corpus))
	}
	for i, f := range loaded {
		if want := fmt.Sprintf("c%d", i); f.Nam != want {
			t.Fatalf("func %d named %q, want %q", i, f.Nam, want)
		}
		// Body must survive the rename round-trip byte-for-byte.
		orig := ir.CloneFunc(corpus[i])
		orig.Nam = f.Nam
		if f.String() != orig.String() {
			t.Fatalf("func %d body changed across round-trip:\n%s\nvs\n%s", i, f, orig)
		}
	}
}
