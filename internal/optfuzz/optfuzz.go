// Package optfuzz generates IR functions for differential testing of
// optimizer passes, mirroring the opt-fuzz tool used in Section 6 of
// the paper: "exhaustively generate all LLVM functions with three
// instructions (over 2-bit integer arithmetic)" plus a randomized CFG
// generator for broader coverage.
//
// Generated functions are fed to the optimizer and the refine package
// validates each transformation, reproducing the paper's
// "we used Alive to validate both individual passes (InstCombine, GVN,
// Reassociation, and SCCP) and the collection of passes implied by the
// -O2 compiler flag".
package optfuzz

import (
	"fmt"

	"tameir/internal/ir"
)

// Config bounds the exhaustive generator.
type Config struct {
	// Width is the integer bitwidth (the paper uses 2).
	Width uint
	// NumParams is the number of iW parameters.
	NumParams int
	// NumInstrs is the exact number of instructions before the ret.
	NumInstrs int
	// Opcodes is the instruction menu; defaults to the full binop set
	// plus icmp, select and freeze.
	Opcodes []ir.Op
	// EnumAttrs also enumerates nsw/nuw/exact variants.
	EnumAttrs bool
	// AllowUndef / AllowPoison include deferred-UB constant leaves as
	// operands.
	AllowUndef  bool
	AllowPoison bool
	// MaxFuncs stops generation after this many functions (0 = no
	// bound). The generator reports whether it was truncated.
	MaxFuncs int
}

// DefaultConfig matches the paper's Section 6 setup at a size that
// enumerates quickly: 2-bit arithmetic, two parameters.
func DefaultConfig(numInstrs int) Config {
	return Config{
		Width:      2,
		NumParams:  2,
		NumInstrs:  numInstrs,
		AllowUndef: true,
	}
}

func (c Config) opcodes() []ir.Op {
	if len(c.Opcodes) > 0 {
		return c.Opcodes
	}
	return []ir.Op{
		ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpUDiv, ir.OpSDiv, ir.OpURem, ir.OpSRem,
		ir.OpShl, ir.OpLShr, ir.OpAShr, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpICmp, ir.OpSelect, ir.OpFreeze,
	}
}

// instrTemplate describes one enumerated instruction choice before
// operand selection.
type instrTemplate struct {
	op    ir.Op
	attrs ir.Attrs
	pred  ir.Pred
}

func (c Config) templates() []instrTemplate {
	var ts []instrTemplate
	for _, op := range c.opcodes() {
		switch {
		case op == ir.OpICmp:
			for p := ir.PredEQ; p <= ir.PredSLE; p++ {
				ts = append(ts, instrTemplate{op: op, pred: p})
			}
		case op.IsBinop() && c.EnumAttrs:
			variants := []ir.Attrs{0}
			switch op {
			case ir.OpAdd, ir.OpSub, ir.OpMul:
				variants = append(variants, ir.NSW, ir.NUW)
			case ir.OpShl:
				variants = append(variants, ir.NSW, ir.NUW)
			case ir.OpUDiv, ir.OpSDiv, ir.OpLShr, ir.OpAShr:
				variants = append(variants, ir.Exact)
			}
			for _, a := range variants {
				ts = append(ts, instrTemplate{op: op, attrs: a})
			}
		default:
			ts = append(ts, instrTemplate{op: op})
		}
	}
	return ts
}

// Exhaustive enumerates every function of the configured shape and
// calls emit for each. emit returning false stops enumeration early.
// It returns the number of functions generated and whether the
// enumeration was truncated (by MaxFuncs or emit).
func Exhaustive(cfg Config, emit func(*ir.Func) bool) (int, bool) {
	ty := ir.Int(cfg.Width)
	ts := cfg.templates()
	count := 0
	truncated := false

	// choices[i] is the flattened decision for instruction i:
	// template index and operand indices, encoded positionally and
	// advanced like an odometer. Operand candidate lists depend on the
	// types of earlier instructions, so we re-derive them per state.
	type state struct {
		tmpl []int
		ops  [][]int
	}
	st := state{tmpl: make([]int, cfg.NumInstrs), ops: make([][]int, cfg.NumInstrs)}

	// buildFunc materializes the current odometer state, or returns
	// nil if the state is ill-typed (e.g. select with no i1 available).
	buildFunc := func() *ir.Func {
		params := make([]*ir.Param, cfg.NumParams)
		for i := range params {
			params[i] = ir.NewParam(fmt.Sprintf("p%d", i), ty)
		}
		f := ir.NewFunc("fz", ty, params...)
		bb := f.NewBlock("entry")

		// Value pools by kind.
		wide := make([]ir.Value, 0, 8)
		for _, p := range params {
			wide = append(wide, p)
		}
		for v := uint64(0); v < 1<<cfg.Width; v++ {
			wide = append(wide, ir.ConstInt(ty, v))
		}
		if cfg.AllowUndef {
			wide = append(wide, ir.NewUndef(ty))
		}
		if cfg.AllowPoison {
			wide = append(wide, ir.NewPoison(ty))
		}
		bools := []ir.Value{ir.ConstBool(false), ir.ConstBool(true)}

		var lastVal ir.Value
		for i := 0; i < cfg.NumInstrs; i++ {
			if st.tmpl[i] >= len(ts) {
				return nil
			}
			tm := ts[st.tmpl[i]]
			// Determine operand candidate pools.
			var pools [][]ir.Value
			switch {
			case tm.op.IsBinop(), tm.op == ir.OpICmp:
				pools = [][]ir.Value{wide, wide}
			case tm.op == ir.OpSelect:
				pools = [][]ir.Value{bools, wide, wide}
			case tm.op == ir.OpFreeze:
				pools = [][]ir.Value{wide}
			default:
				return nil
			}
			if st.ops[i] == nil {
				st.ops[i] = make([]int, len(pools))
			}
			if len(st.ops[i]) != len(pools) {
				return nil
			}
			args := make([]ir.Value, len(pools))
			for j, pool := range pools {
				if st.ops[i][j] >= len(pool) {
					return nil
				}
				args[j] = pool[st.ops[i][j]]
			}
			var in *ir.Instr
			switch {
			case tm.op.IsBinop():
				in = ir.NewInstr(tm.op, ty, args...)
				in.Attrs = tm.attrs
			case tm.op == ir.OpICmp:
				in = ir.NewInstr(ir.OpICmp, ir.I1, args...)
				in.Pred = tm.pred
			case tm.op == ir.OpSelect:
				in = ir.NewInstr(ir.OpSelect, ty, args...)
			case tm.op == ir.OpFreeze:
				in = ir.NewInstr(ir.OpFreeze, ty, args...)
			}
			in.Nam = fmt.Sprintf("v%d", i)
			bb.Append(in)
			if in.Ty.Equal(ty) {
				wide = append(wide, in)
				lastVal = in
			} else {
				bools = append(bools, in)
			}
		}
		if lastVal == nil {
			return nil
		}
		ret := ir.NewInstr(ir.OpRet, ir.Void, lastVal)
		bb.Append(ret)
		return f
	}

	// advance increments the odometer. Pool sizes are position- and
	// template-dependent; we bound operand digits by a safe maximum
	// and let buildFunc reject overshoot... simpler: advance template
	// digits outermost, rebuilding operand digit bounds each time by
	// attempting the build.
	maxPool := cfg.NumParams + (1 << cfg.Width) + 2 + cfg.NumInstrs
	advance := func() bool {
		// Operand digits first (innermost).
		for i := cfg.NumInstrs - 1; i >= 0; i-- {
			for j := len(st.ops[i]) - 1; j >= 0; j-- {
				st.ops[i][j]++
				if st.ops[i][j] < maxPool {
					return true
				}
				st.ops[i][j] = 0
			}
		}
		// Then template digits.
		for i := cfg.NumInstrs - 1; i >= 0; i-- {
			st.tmpl[i]++
			// Template change invalidates operand digit shapes.
			for k := 0; k <= i; k++ {
				st.ops[k] = nil
			}
			for k := i + 1; k < cfg.NumInstrs; k++ {
				st.tmpl[k] = 0
				st.ops[k] = nil
			}
			if st.tmpl[i] < len(ts) {
				return true
			}
			st.tmpl[i] = 0
		}
		return false
	}

	for {
		f := buildFunc()
		if f != nil {
			count++
			if !emit(f) {
				return count, true
			}
			if cfg.MaxFuncs > 0 && count >= cfg.MaxFuncs {
				return count, true
			}
		}
		if !advance() {
			return count, truncated
		}
	}
}
