// Package optfuzz generates IR functions for differential testing of
// optimizer passes, mirroring the opt-fuzz tool used in Section 6 of
// the paper: "exhaustively generate all LLVM functions with three
// instructions (over 2-bit integer arithmetic)" plus a randomized CFG
// generator for broader coverage.
//
// Generated functions are fed to the optimizer and the refine package
// validates each transformation, reproducing the paper's
// "we used Alive to validate both individual passes (InstCombine, GVN,
// Reassociation, and SCCP) and the collection of passes implied by the
// -O2 compiler flag".
package optfuzz

import (
	"fmt"

	"tameir/internal/ir"
)

// Config bounds the exhaustive generator.
type Config struct {
	// Width is the integer bitwidth (the paper uses 2).
	Width uint
	// NumParams is the number of iW parameters.
	NumParams int
	// NumInstrs is the exact number of instructions before the ret.
	NumInstrs int
	// Opcodes is the instruction menu; defaults to the full binop set
	// plus icmp, select and freeze.
	Opcodes []ir.Op
	// EnumAttrs also enumerates nsw/nuw/exact variants.
	EnumAttrs bool
	// AllowUndef / AllowPoison include deferred-UB constant leaves as
	// operands.
	AllowUndef  bool
	AllowPoison bool
	// MaxFuncs stops generation after this many functions (0 = no
	// bound). The generator reports whether it was truncated.
	MaxFuncs int
}

// DefaultConfig matches the paper's Section 6 setup at a size that
// enumerates quickly: 2-bit arithmetic, two parameters.
func DefaultConfig(numInstrs int) Config {
	return Config{
		Width:      2,
		NumParams:  2,
		NumInstrs:  numInstrs,
		AllowUndef: true,
	}
}

func (c Config) opcodes() []ir.Op {
	if len(c.Opcodes) > 0 {
		return c.Opcodes
	}
	return []ir.Op{
		ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpUDiv, ir.OpSDiv, ir.OpURem, ir.OpSRem,
		ir.OpShl, ir.OpLShr, ir.OpAShr, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpICmp, ir.OpSelect, ir.OpFreeze,
	}
}

// instrTemplate describes one enumerated instruction choice before
// operand selection.
type instrTemplate struct {
	op    ir.Op
	attrs ir.Attrs
	pred  ir.Pred
}

func (c Config) templates() []instrTemplate {
	var ts []instrTemplate
	for _, op := range c.opcodes() {
		switch {
		case op == ir.OpICmp:
			for p := ir.PredEQ; p <= ir.PredSLE; p++ {
				ts = append(ts, instrTemplate{op: op, pred: p})
			}
		case op.IsBinop() && c.EnumAttrs:
			variants := []ir.Attrs{0}
			switch op {
			case ir.OpAdd, ir.OpSub, ir.OpMul:
				variants = append(variants, ir.NSW, ir.NUW)
			case ir.OpShl:
				variants = append(variants, ir.NSW, ir.NUW)
			case ir.OpUDiv, ir.OpSDiv, ir.OpLShr, ir.OpAShr:
				variants = append(variants, ir.Exact)
			}
			for _, a := range variants {
				ts = append(ts, instrTemplate{op: op, attrs: a})
			}
		default:
			ts = append(ts, instrTemplate{op: op})
		}
	}
	return ts
}

// NumShards returns how many disjoint shards ExhaustiveShard splits
// the cfg's enumeration space into: one per choice of the first
// instruction's template. Concatenating the shards in index order
// yields exactly the sequence Exhaustive produces, which is what makes
// a parallel campaign a pure reordering of the serial one.
func NumShards(cfg Config) int {
	if cfg.NumInstrs <= 0 {
		return 1
	}
	return len(cfg.templates())
}

// ShardCapacities returns, for each shard, how many functions that
// shard can enumerate, saturated at limit (which must be positive —
// callers pass the campaign budget, and capacities beyond it can never
// matter). Only the template odometer is walked: each template tuple
// contributes the product of its exact operand bounds, so the cost is
// proportional to the number of tuples, not the number of functions.
// The budgeted campaign uses this to hand budget that small shards
// cannot absorb to shards that can, keeping the sharded candidate
// count equal to the serial one.
func ShardCapacities(cfg Config, limit int) []int {
	caps := make([]int, NumShards(cfg))
	if cfg.NumInstrs <= 0 {
		return caps
	}
	e := newEnumerator(cfg)
	for s := range caps {
		e.tmpl[0] = s
		for i := 1; i < cfg.NumInstrs; i++ {
			e.tmpl[i] = 0
		}
		total := 0
		for {
			if e.prepare() {
				n := 1
				for _, b := range e.bounds {
					n *= b
					if n >= limit {
						n = limit
						break
					}
				}
				total += n
				if total >= limit {
					total = limit
					break
				}
			}
			if !e.advanceTemplates(true) {
				break
			}
		}
		caps[s] = total
	}
	return caps
}

// Exhaustive enumerates every function of the configured shape and
// calls emit for each. emit returning false stops enumeration early.
// It returns the number of functions generated and whether the
// enumeration was truncated (by MaxFuncs or emit).
func Exhaustive(cfg Config, emit func(*ir.Func) bool) (int, bool) {
	return exhaustive(cfg, -1, emit)
}

// ExhaustiveShard enumerates only the slice of the space whose first
// instruction uses template index shard (0 ≤ shard < NumShards(cfg)).
// Shards are disjoint, cover the space, and share no mutable state, so
// distinct shards may be enumerated concurrently from different
// goroutines. MaxFuncs applies to this shard alone.
func ExhaustiveShard(cfg Config, shard int, emit func(*ir.Func) bool) (int, bool) {
	return exhaustive(cfg, shard, emit)
}

// enumerator carries the per-shard enumeration state. The constant
// leaves are allocated once and shared across every generated function
// (constants carry no use lists, so sharing is safe); the pool slices
// and name tables are reused across functions to keep the inner loop
// allocation-free apart from the IR nodes the caller receives.
type enumerator struct {
	cfg Config
	ty  ir.Type
	ts  []instrTemplate

	tmpl   []int // template index per instruction
	digits []int // flattened operand digits, instruction-major
	bounds []int // exact pool size for each digit
	digOff []int // first digit of each instruction

	consts []ir.Value // shared wide constant leaves (consts, undef, poison)
	boolsT [2]ir.Value

	wide  []ir.Value // scratch pools, rebuilt per function
	bools []ir.Value

	pNames []string
	vNames []string
}

func newEnumerator(cfg Config) *enumerator {
	e := &enumerator{
		cfg:    cfg,
		ty:     ir.Int(cfg.Width),
		ts:     cfg.templates(),
		tmpl:   make([]int, cfg.NumInstrs),
		digOff: make([]int, cfg.NumInstrs+1),
		pNames: make([]string, cfg.NumParams),
		vNames: make([]string, cfg.NumInstrs),
	}
	for v := uint64(0); v < 1<<cfg.Width; v++ {
		e.consts = append(e.consts, ir.ConstInt(e.ty, v))
	}
	if cfg.AllowUndef {
		e.consts = append(e.consts, ir.NewUndef(e.ty))
	}
	if cfg.AllowPoison {
		e.consts = append(e.consts, ir.NewPoison(e.ty))
	}
	e.boolsT = [2]ir.Value{ir.ConstBool(false), ir.ConstBool(true)}
	for i := range e.pNames {
		e.pNames[i] = fmt.Sprintf("p%d", i)
	}
	for i := range e.vNames {
		e.vNames[i] = fmt.Sprintf("v%d", i)
	}
	return e
}

// arity returns the operand count of a template.
func arity(tm instrTemplate) int {
	if tm.op == ir.OpSelect {
		return 3
	}
	if tm.op == ir.OpFreeze {
		return 1
	}
	return 2 // binop or icmp
}

// prepare recomputes the operand digit layout and exact bounds for the
// current template tuple, and reports whether the tuple can produce a
// function at all (some instruction must have the wide result type —
// the return value).
func (e *enumerator) prepare() bool {
	e.digits = e.digits[:0]
	e.bounds = e.bounds[:0]
	nWide := e.cfg.NumParams + len(e.consts)
	nBool := 2
	anyWide := false
	for i := 0; i < e.cfg.NumInstrs; i++ {
		tm := e.ts[e.tmpl[i]]
		e.digOff[i] = len(e.digits)
		if tm.op == ir.OpSelect {
			e.digits = append(e.digits, 0, 0, 0)
			e.bounds = append(e.bounds, nBool, nWide, nWide)
		} else if tm.op == ir.OpFreeze {
			e.digits = append(e.digits, 0)
			e.bounds = append(e.bounds, nWide)
		} else {
			e.digits = append(e.digits, 0, 0)
			e.bounds = append(e.bounds, nWide, nWide)
		}
		if tm.op == ir.OpICmp {
			nBool++
		} else {
			nWide++
			anyWide = true
		}
	}
	e.digOff[e.cfg.NumInstrs] = len(e.digits)
	return anyWide
}

// build materializes the function for the current digit state. The
// state is valid by construction (bounds are exact), so build never
// fails.
func (e *enumerator) build() *ir.Func {
	params := make([]*ir.Param, e.cfg.NumParams)
	for i := range params {
		params[i] = ir.NewParam(e.pNames[i], e.ty)
	}
	f := ir.NewFunc("fz", e.ty, params...)
	bb := f.NewBlock("entry")

	e.wide = e.wide[:0]
	for _, p := range params {
		e.wide = append(e.wide, p)
	}
	e.wide = append(e.wide, e.consts...)
	e.bools = append(e.bools[:0], e.boolsT[0], e.boolsT[1])

	var lastVal ir.Value
	var args [3]ir.Value
	for i := 0; i < e.cfg.NumInstrs; i++ {
		tm := e.ts[e.tmpl[i]]
		d := e.digits[e.digOff[i]:e.digOff[i+1]]
		var in *ir.Instr
		switch {
		case tm.op == ir.OpSelect:
			args[0], args[1], args[2] = e.bools[d[0]], e.wide[d[1]], e.wide[d[2]]
			in = ir.NewInstr(ir.OpSelect, e.ty, args[:3]...)
		case tm.op == ir.OpFreeze:
			args[0] = e.wide[d[0]]
			in = ir.NewInstr(ir.OpFreeze, e.ty, args[:1]...)
		case tm.op == ir.OpICmp:
			args[0], args[1] = e.wide[d[0]], e.wide[d[1]]
			in = ir.NewInstr(ir.OpICmp, ir.I1, args[:2]...)
			in.Pred = tm.pred
		default:
			args[0], args[1] = e.wide[d[0]], e.wide[d[1]]
			in = ir.NewInstr(tm.op, e.ty, args[:2]...)
			in.Attrs = tm.attrs
		}
		in.Nam = e.vNames[i]
		bb.Append(in)
		if in.Ty.Equal(e.ty) {
			e.wide = append(e.wide, in)
			lastVal = in
		} else {
			e.bools = append(e.bools, in)
		}
	}
	bb.Append(ir.NewInstr(ir.OpRet, ir.Void, lastVal))
	return f
}

// advanceDigits steps the operand odometer (rightmost digit fastest)
// within the exact bounds; false means the tuple's operand space is
// exhausted.
func (e *enumerator) advanceDigits() bool {
	for i := len(e.digits) - 1; i >= 0; i-- {
		e.digits[i]++
		if e.digits[i] < e.bounds[i] {
			return true
		}
		e.digits[i] = 0
	}
	return false
}

// advanceTemplates steps the template odometer. When firstFixed, the
// first instruction's template is pinned (shard enumeration) and only
// the lower digits advance.
func (e *enumerator) advanceTemplates(firstFixed bool) bool {
	lo := 0
	if firstFixed {
		lo = 1
	}
	for i := e.cfg.NumInstrs - 1; i >= lo; i-- {
		e.tmpl[i]++
		if e.tmpl[i] < len(e.ts) {
			return true
		}
		e.tmpl[i] = 0
	}
	return false
}

// exhaustive drives the enumeration; shard < 0 means the whole space.
func exhaustive(cfg Config, shard int, emit func(*ir.Func) bool) (int, bool) {
	if cfg.NumInstrs <= 0 {
		return 0, false
	}
	e := newEnumerator(cfg)
	if shard >= len(e.ts) {
		return 0, false
	}
	if shard >= 0 {
		e.tmpl[0] = shard
	}
	count := 0
	for {
		if e.prepare() {
			for {
				count++
				if !emit(e.build()) {
					return count, true
				}
				if cfg.MaxFuncs > 0 && count >= cfg.MaxFuncs {
					return count, true
				}
				if !e.advanceDigits() {
					break
				}
			}
		}
		if !e.advanceTemplates(shard >= 0) {
			return count, false
		}
	}
}
