package optfuzz

import (
	"reflect"
	"testing"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/refine"
)

// TestExhaustiveSourceMatchesGenerator pins the byte-identical
// refactor guarantee at the stream level: the Source adapter must
// reproduce the bare generator's shard structure, capacities, and
// per-shard candidate text exactly.
func TestExhaustiveSourceMatchesGenerator(t *testing.T) {
	gen := DefaultConfig(2)
	gen.MaxFuncs = 500
	src := NewExhaustiveSource(gen)

	if got, want := src.Shards(), NumShards(gen); got != want {
		t.Fatalf("Shards() = %d, want %d", got, want)
	}
	if got, want := src.Budget(), gen.MaxFuncs; got != want {
		t.Fatalf("Budget() = %d, want %d", got, want)
	}
	if got, want := src.Capacities(100), ShardCapacities(gen, 100); !reflect.DeepEqual(got, want) {
		t.Fatalf("Capacities(100) = %v, want %v", got, want)
	}

	var direct []string
	shardGen := gen
	shardGen.MaxFuncs = 30
	for s := 0; s < NumShards(gen); s++ {
		ExhaustiveShard(shardGen, s, func(f *ir.Func) bool {
			direct = append(direct, f.String())
			return true
		})
	}
	var viaSource []string
	for s := 0; s < src.Shards(); s++ {
		src.Enumerate(s, 30, func(f *ir.Func) bool {
			viaSource = append(viaSource, f.String())
			return true
		})
	}
	if !reflect.DeepEqual(direct, viaSource) {
		t.Fatalf("Source stream diverges from ExhaustiveShard: %d vs %d candidates", len(direct), len(viaSource))
	}
}

// TestCampaignExplicitSourceMatchesNil proves the refactor left the
// default path untouched: a campaign given an explicit ExhaustiveSource
// must produce byte-identical results to the legacy Gen-field path.
func TestCampaignExplicitSourceMatchesNil(t *testing.T) {
	gen := DefaultConfig(2)
	gen.AllowUndef = false
	gen.AllowPoison = true
	gen.MaxFuncs = 400
	sem := core.FreezeOptions()
	mk := func(src Source) Stats {
		return Campaign{
			Gen:    gen,
			Source: src,
			Refine: refine.DefaultConfig(sem, sem),
			Transform: func(f *ir.Func) {
				// A deliberately unsound constant-folding stand-in: drop
				// the last non-terminator instruction's operands to zero.
				for _, b := range f.Blocks {
					for _, in := range b.Instrs() {
						if in.Op == ir.OpAdd {
							in.SetArg(0, ir.ConstInt(in.Ty, 0))
							return
						}
					}
				}
			},
			Workers: 2,
		}.Run()
	}
	nilSrc := mk(nil)
	explicit := mk(NewExhaustiveSource(gen))
	if !reflect.DeepEqual(nilSrc, explicit) {
		t.Fatalf("explicit ExhaustiveSource diverges from nil-Source default:\nnil: %+v\nexp: %+v", nilSrc, explicit)
	}
	if nilSrc.Source != "exhaustive" || nilSrc.Epochs != 1 {
		t.Fatalf("workload identity: Source=%q Epochs=%d, want exhaustive/1", nilSrc.Source, nilSrc.Epochs)
	}
	if nilSrc.Refuted == 0 {
		t.Fatal("the unsound stand-in transform should refute at least once")
	}
}
