package optfuzz

import (
	"fmt"

	"tameir/internal/ir"
)

// The sampled wide-bitwidth workload. The §6 argument for tiny widths
// is that input enumeration closes — and it still closes at i8 (257
// inputs per parameter with poison) and, with a raised input budget,
// at i16. What does NOT close is the function space, so this source
// keeps the exhaustive enumerator's shard structure and stable ordinal
// space but emits only every Stride-th candidate: a deterministic
// arithmetic sample of the same space, cheap enough to sweep widths
// where bit-twiddling folds actually have room to be wrong.
//
// Drivers must raise refine.Config.ExhaustiveInputBits to the width
// (and MaxInputs to cover 2^width+1 tuples per parameter) or verdicts
// degrade to Inconclusive-by-sampling.

// WideConfig configures a WideSource.
type WideConfig struct {
	// Width is the integer width (8 or 16 are the intended points).
	Width uint
	// NumInstrs / NumParams shape the enumerated functions (defaults 2
	// and 1 — one parameter keeps the input product enumerable).
	NumInstrs int
	NumParams int
	// Stride emits every Stride-th candidate of each shard's
	// enumeration (default 97, coprime to the template period so the
	// sample cuts across operand patterns).
	Stride int
	// MaxFuncs is the campaign-wide emitted-candidate budget (0 = all
	// sampled candidates).
	MaxFuncs int
	// AllowPoison includes poison constant operands (default on via
	// NewWideSource).
	AllowPoison bool
	// Opcodes overrides the menu; the default is the full binop set
	// plus icmp and select. Freeze is excluded: freezing a wide poison
	// fans out 2^width ways, past any sane oracle bound.
	Opcodes []ir.Op
}

// WideSource samples the exhaustive space at a wider bitwidth.
type WideSource struct {
	cfg WideConfig
	gen Config
}

// NewWideSource builds the sampled wide-width workload.
func NewWideSource(cfg WideConfig) *WideSource {
	if cfg.Width == 0 {
		cfg.Width = 8
	}
	if cfg.NumInstrs <= 0 {
		cfg.NumInstrs = 2
	}
	if cfg.NumParams <= 0 {
		cfg.NumParams = 1
	}
	if cfg.Stride <= 0 {
		cfg.Stride = 97
	}
	ops := cfg.Opcodes
	if len(ops) == 0 {
		ops = []ir.Op{
			ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpUDiv, ir.OpSDiv, ir.OpURem, ir.OpSRem,
			ir.OpShl, ir.OpLShr, ir.OpAShr, ir.OpAnd, ir.OpOr, ir.OpXor,
			ir.OpICmp, ir.OpSelect,
		}
	}
	return &WideSource{
		cfg: cfg,
		gen: Config{
			Width:       cfg.Width,
			NumParams:   cfg.NumParams,
			NumInstrs:   cfg.NumInstrs,
			Opcodes:     ops,
			AllowPoison: cfg.AllowPoison,
		},
	}
}

// Name implements Source.
func (w *WideSource) Name() string { return fmt.Sprintf("wide%d", w.cfg.Width) }

// Shards implements Source: the underlying exhaustive shard structure.
func (w *WideSource) Shards() int { return NumShards(w.gen) }

// Budget implements Source.
func (w *WideSource) Budget() int { return w.cfg.MaxFuncs }

// Capacities implements Source: unknown after striding, so the budget
// splits evenly.
func (w *WideSource) Capacities(limit int) []int { return nil }

// Enumerate implements Source: walk the shard's exhaustive order,
// emitting every Stride-th candidate.
func (w *WideSource) Enumerate(shard, max int, emit func(*ir.Func) bool) (int, bool) {
	ord, n, stopped := 0, 0, false
	ExhaustiveShard(w.gen, shard, func(f *ir.Func) bool {
		if ord%w.cfg.Stride != 0 {
			ord++
			return true
		}
		ord++
		if max > 0 && n >= max {
			stopped = true
			return false
		}
		n++
		if !emit(f) {
			stopped = true
			return false
		}
		return true
	})
	return n, stopped
}
