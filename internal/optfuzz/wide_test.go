package optfuzz

import (
	"reflect"
	"testing"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/refine"
)

// TestWideSourceSampledStream checks the stride sample: deterministic,
// strictly a subsequence of the exhaustive order, at the right rate.
func TestWideSourceSampledStream(t *testing.T) {
	src := NewWideSource(WideConfig{Width: 8, NumInstrs: 1, Stride: 7, AllowPoison: true})
	if src.Name() != "wide8" {
		t.Fatalf("Name() = %q", src.Name())
	}
	var full []string
	ExhaustiveShard(src.gen, 0, func(f *ir.Func) bool {
		full = append(full, f.String())
		return true
	})
	var sampled []string
	src.Enumerate(0, 0, func(f *ir.Func) bool {
		sampled = append(sampled, f.String())
		return true
	})
	want := (len(full) + 6) / 7
	if len(sampled) != want {
		t.Fatalf("stride 7 over %d candidates emitted %d, want %d", len(full), len(sampled), want)
	}
	for i, s := range sampled {
		if s != full[i*7] {
			t.Fatalf("sample %d is not exhaustive ordinal %d", i, i*7)
		}
	}
	var again []string
	src.Enumerate(0, 0, func(f *ir.Func) bool {
		again = append(again, f.String())
		return true
	})
	if !reflect.DeepEqual(sampled, again) {
		t.Fatal("wide enumeration not repeatable")
	}
	for _, s := range sampled {
		f, err := ir.ParseFunc(s)
		if err != nil {
			t.Fatalf("wide candidate does not parse: %v", err)
		}
		if f.Params[0].Ty.Bits != 8 {
			t.Fatalf("candidate parameter is i%d, want i8", f.Params[0].Ty.Bits)
		}
	}
}

// TestWideCampaignClosesInputs runs a tiny i8 self-refinement campaign
// with the raised exhaustive-input cutoff: every decidable verdict
// must be Verified, and none may degrade to sampling-inconclusive.
func TestWideCampaignClosesInputs(t *testing.T) {
	sem := core.FreezeOptions()
	rcfg := refine.DefaultConfig(sem, sem)
	rcfg.ExhaustiveInputBits = 8
	st := Campaign{
		Source: NewWideSource(WideConfig{Width: 8, NumInstrs: 1, Stride: 211, MaxFuncs: 60, AllowPoison: true}),
		Refine: rcfg,
	}.Run()
	if st.Source != "wide8" {
		t.Fatalf("workload label %q", st.Source)
	}
	if st.Funcs == 0 {
		t.Fatal("wide campaign enumerated nothing")
	}
	if st.Refuted != 0 {
		t.Fatalf("self-refinement refuted %d wide candidates", st.Refuted)
	}
	if st.Verified == 0 {
		t.Fatal("no wide verdict closed exhaustively — ExhaustiveInputBits not honored")
	}
}
