package optfuzz

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/passes"
	"tameir/internal/refine"
	"tameir/internal/telemetry"
	"tameir/internal/telemetry/trace"
)

// TestCampaignTelemetryDeterministicAcrossWorkers is the telemetry
// acceptance gate: the deterministic section of a campaign's metric
// snapshot must be byte-identical for any worker count, exactly like
// its findings.
func TestCampaignTelemetryDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) (Stats, *telemetry.Registry) {
		reg := telemetry.NewRegistry()
		c := o2Campaign(core.FreezeOptions(), passes.DefaultFreezeConfig(), workers, 0)
		c.Telemetry = reg
		return c.Run(), reg
	}

	ref, refReg := run(1)
	if ref.Funcs == 0 {
		t.Fatal("campaign validated no functions")
	}
	refText := refReg.Snapshot().DeterministicText()

	// The deterministic section must carry the campaign verdicts, the
	// checker counters, and the per-shard program-cache traffic.
	for _, want := range []string{
		"campaign_funcs_total", "campaign_verified_total",
		"check_checks_total", "check_inputs_total", "check_set_size_bucket",
		"progcache_hits_total", "progcache_misses_total",
	} {
		if !strings.Contains(refText, want) {
			t.Errorf("deterministic exposition lacks %s:\n%s", want, refText)
		}
	}
	// With the shared memo enabled, everything memo-adjacent must NOT
	// sit in the deterministic section.
	for _, reject := range []string{"memo_hits_total", "check_sets_computed_total", "engine_steps_total"} {
		if strings.Contains(refText, reject) {
			t.Errorf("deterministic exposition leaks scheduling-dependent %s", reject)
		}
	}

	kv, err := telemetry.ParseText(strings.NewReader(refText))
	if err != nil {
		t.Fatalf("deterministic exposition does not parse: %v", err)
	}
	if got := kv["campaign_funcs_total"]; got != int64(ref.Funcs) {
		t.Errorf("campaign_funcs_total = %d, Stats.Funcs = %d", got, ref.Funcs)
	}
	if got := kv["campaign_refuted_total"]; got != int64(ref.Refuted) {
		t.Errorf("campaign_refuted_total = %d, Stats.Refuted = %d", got, ref.Refuted)
	}

	for _, workers := range []int{2, 8} {
		st, reg := run(workers)
		if text := reg.Snapshot().DeterministicText(); text != refText {
			t.Errorf("workers=%d: deterministic telemetry diverges from serial:\nserial:\n%s\nparallel:\n%s",
				workers, refText, text)
		}
		// Scheduling-side sums that are still partition-fixed: the
		// computed+memo-hit total equals the behaviour sets consumed.
		full := reg.Snapshot()
		computed, _ := full.Get("check_sets_computed_total")
		hits, _ := full.Get("check_sets_memo_hits_total")
		refFull := refReg.Snapshot()
		refComputed, _ := refFull.Get("check_sets_computed_total")
		refHits, _ := refFull.Get("check_sets_memo_hits_total")
		if computed.Value+hits.Value != refComputed.Value+refHits.Value {
			t.Errorf("workers=%d: consumed behaviour sets %d+%d != serial %d+%d",
				workers, computed.Value, hits.Value, refComputed.Value, refHits.Value)
		}
		_ = st
	}
}

// TestCampaignStreamOrdering: findings streamed over Campaign.Stream
// from a parallel run must arrive in exactly the deterministic
// (shard, index, pass) order a serial unstreamed run reports — and the
// streamed run must not also retain them in Stats.Findings.
func TestCampaignStreamOrdering(t *testing.T) {
	sem := core.LegacyOptions(core.BranchPoisonNondet)
	pcfg := passes.DefaultLegacyConfig()
	pcfg.Unsound = true
	build := func(workers int) Campaign {
		gen := DefaultConfig(2)
		gen.MaxFuncs = 2000
		return Campaign{
			Gen:    gen,
			Refine: refine.DefaultConfig(sem, sem),
			Transform: func(f *ir.Func) {
				m := ir.NewModule()
				m.AddFunc(f)
				passes.O2().Run(m, pcfg)
			},
			Workers: workers,
		}
	}

	ref := build(1).Run()
	if ref.Refuted == 0 {
		t.Fatal("unsound pipeline produced no findings to stream")
	}

	ch := make(chan Finding, 4)
	var streamed []Finding
	done := make(chan struct{})
	go func() {
		defer close(done)
		for f := range ch {
			streamed = append(streamed, f)
		}
	}()
	c := build(8)
	c.Stream = ch
	st := c.Run()
	<-done

	if len(st.Findings) != 0 {
		t.Errorf("streamed campaign retained %d findings in Stats; streaming is the memory bound", len(st.Findings))
	}
	if st.Refuted != ref.Refuted {
		t.Fatalf("streamed run refuted %d, serial %d", st.Refuted, ref.Refuted)
	}
	if !reflect.DeepEqual(streamed, ref.Findings) {
		if len(streamed) != len(ref.Findings) {
			t.Fatalf("streamed %d findings, serial reports %d", len(streamed), len(ref.Findings))
		}
		for i := range streamed {
			if !reflect.DeepEqual(streamed[i], ref.Findings[i]) {
				t.Fatalf("finding %d out of order: streamed (shard %d, index %d), serial (shard %d, index %d)",
					i, streamed[i].Shard, streamed[i].Index, ref.Findings[i].Shard, ref.Findings[i].Index)
			}
		}
	}
}

// TestCampaignProgress: the Progress callback sees monotone counters
// and a final forced report whose totals match the campaign result.
func TestCampaignProgress(t *testing.T) {
	var reports []CampaignProgress
	c := o2Campaign(core.FreezeOptions(), passes.DefaultFreezeConfig(), 4, 0)
	c.Progress = func(p CampaignProgress) { reports = append(reports, p) }
	c.ProgressEvery = time.Nanosecond // fire on every candidate
	st := c.Run()

	if len(reports) == 0 {
		t.Fatal("progress callback never fired")
	}
	var prev CampaignProgress
	for i, p := range reports {
		if p.Funcs < prev.Funcs || p.ShardsDone < prev.ShardsDone {
			t.Fatalf("progress regressed at report %d: %+v after %+v", i, p, prev)
		}
		prev = p
	}
	last := reports[len(reports)-1]
	if last.Funcs != uint64(st.Funcs) || last.Verified != uint64(st.Verified) ||
		last.Refuted != uint64(st.Refuted) || last.Inconclusive != uint64(st.Inconclusive) {
		t.Errorf("final progress %+v does not match campaign stats funcs=%d verified=%d refuted=%d inconclusive=%d",
			last, st.Funcs, st.Verified, st.Refuted, st.Inconclusive)
	}
	if last.ShardsDone != last.Shards {
		t.Errorf("final progress reports %d/%d shards done", last.ShardsDone, last.Shards)
	}
}

// TestCampaignTraceProvenance: a traced campaign must explain every
// finding — each Finding carries a Provenance and the recorder holds
// exactly one pinned "finding" instant per finding, regardless of how
// hot the per-shard rings ran. This is the invariant `make ci-trace`
// asserts with tame-trace.
func TestCampaignTraceProvenance(t *testing.T) {
	sem := core.LegacyOptions(core.BranchPoisonNondet)
	pcfg := passes.DefaultLegacyConfig()
	pcfg.Unsound = true
	gen := DefaultConfig(2)
	gen.MaxFuncs = 2000
	rec := trace.NewRecorder(0)
	c := Campaign{
		Gen:    gen,
		Refine: refine.DefaultConfig(sem, sem),
		Transform: func(f *ir.Func) {
			m := ir.NewModule()
			m.AddFunc(f)
			passes.O2().Run(m, pcfg)
		},
		Workers: 4,
		Trace:   rec,
		Seed:    7,
	}
	st := c.Run()
	if st.Refuted == 0 {
		t.Fatal("unsound pipeline produced no findings")
	}
	for i, f := range st.Findings {
		if f.Prov == nil {
			t.Fatalf("finding %d has no provenance", i)
		}
		if f.Prov.Seed != 7 || f.Prov.Source == "" || f.Prov.Tier == "" {
			t.Errorf("finding %d provenance incomplete: %+v", i, *f.Prov)
		}
	}
	expr := fmt.Sprintf("instants(finding)==%d, spans(campaign/s)>0, counter(findings)==%d",
		st.Refuted, st.Refuted)
	if err := trace.Assert(rec.Events(), expr); err != nil {
		t.Error(err)
	}
	// Each pinned finding instant must carry the coordinates needed to
	// replay it: shard, epoch, pass, and the campaign seed.
	for _, ev := range rec.Events() {
		if ev.Name != "finding" {
			continue
		}
		// "pass" stays empty here: a bare Transform campaign has no
		// named pass; the named-pipeline path is covered by ci-trace.
		for _, key := range []string{"shard", "epoch", "seed", "source", "tier"} {
			if ev.Arg(key) == "" {
				t.Fatalf("finding instant lacks %q: %+v", key, ev)
			}
		}
	}
}
