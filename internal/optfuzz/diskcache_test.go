package optfuzz

import (
	"path/filepath"
	"reflect"
	"testing"

	"tameir/internal/cache"
	"tameir/internal/core"
	"tameir/internal/passes"
	"tameir/internal/refine"
)

// diskCampaign is a small -O2 freeze-dialect campaign bound to dir.
func diskCampaign(dir string) Campaign {
	sem := core.FreezeOptions()
	gen := DefaultConfig(1)
	gen.AllowUndef = false
	gen.AllowPoison = true
	gen.EnumAttrs = true
	gen.MaxFuncs = 150
	return Campaign{
		Gen:         gen,
		Refine:      refine.DefaultConfig(sem, sem),
		Pipeline:    passes.O2(),
		PipelineCfg: passes.DefaultFreezeConfig(),
		Workers:     2,
		CacheDir:    dir,
	}
}

// sameVerdicts compares everything observable about two campaign runs'
// verdict streams: counts, per-pass splits, and the findings.
func sameVerdicts(t *testing.T, label string, a, b Stats) {
	t.Helper()
	if a.Funcs != b.Funcs || a.Verified != b.Verified || a.Refuted != b.Refuted || a.Inconclusive != b.Inconclusive {
		t.Errorf("%s: verdict counts diverge: %d/%d/%d/%d vs %d/%d/%d/%d",
			label, a.Funcs, a.Verified, a.Refuted, a.Inconclusive,
			b.Funcs, b.Verified, b.Refuted, b.Inconclusive)
	}
	if !reflect.DeepEqual(a.Passes, b.Passes) {
		t.Errorf("%s: per-pass stats diverge:\n%+v\nvs\n%+v", label, a.Passes, b.Passes)
	}
	if !reflect.DeepEqual(a.Findings, b.Findings) {
		t.Errorf("%s: findings diverge:\n%+v\nvs\n%+v", label, a.Findings, b.Findings)
	}
}

// TestCacheDirWarmMatchesCold is the tentpole's soundness gate: a
// campaign warm-started from -cache-dir must report byte-identical
// verdicts to the cold run that wrote the snapshots, while actually
// serving lookups from disk-loaded entries.
func TestCacheDirWarmMatchesCold(t *testing.T) {
	dir := t.TempDir()
	cold := diskCampaign(dir).Run()
	if cold.DiskErr != nil {
		t.Fatalf("cold run disk error: %v", cold.DiskErr)
	}
	if cold.DiskHits != 0 {
		t.Fatalf("cold run claims %d disk hits from an empty dir", cold.DiskHits)
	}
	if cold.Funcs == 0 {
		t.Fatal("empty campaign")
	}

	warm := diskCampaign(dir).Run()
	if warm.DiskErr != nil {
		t.Fatalf("warm run disk error: %v", warm.DiskErr)
	}
	if warm.DiskLoads == 0 {
		t.Fatal("warm run loaded no snapshots")
	}
	if warm.DiskHits == 0 {
		t.Fatal("warm run served no memo lookups from disk-loaded entries")
	}
	if warm.DiskStaleRejects != 0 {
		t.Fatalf("warm run rejected %d snapshots as stale", warm.DiskStaleRejects)
	}
	sameVerdicts(t, "warm vs cold", cold, warm)
}

// A snapshot written by a build with a different semantics fingerprint
// must be rejected wholesale — the campaign runs exactly as cold, and
// nothing from the stale file can reach a verdict.
func TestCacheDirStaleSnapshotRejectedWholesale(t *testing.T) {
	baseline := diskCampaign(t.TempDir()).Run() // plain cold reference

	dir := t.TempDir()
	if st := diskCampaign(dir).Run(); st.DiskErr != nil {
		t.Fatalf("seed run disk error: %v", st.DiskErr)
	}
	// Rewrite both snapshots under a fingerprint this build does not
	// have, with junk contents that would visibly corrupt verdicts if a
	// partial load ever happened.
	junk := &refine.MemoSnapshot{Entries: []refine.MemoSnapshotEntry{{
		FuncKey: "junk",
		Args:    []refine.ArgSetSnapshot{{Key: "x", Set: refine.BehaviorSetSnapshot{UB: true}}},
	}}}
	for _, kind := range []string{"memo", "lowerings"} {
		if err := cache.WriteFile(filepath.Join(dir, kind+".snap"), kind, "other-semantics", junk); err != nil {
			t.Fatal(err)
		}
	}

	st := diskCampaign(dir).Run()
	if st.DiskErr != nil {
		t.Fatalf("disk error on stale dir: %v", st.DiskErr)
	}
	if st.DiskStaleRejects != 2 {
		t.Fatalf("stale rejects = %d, want 2 (both snapshots)", st.DiskStaleRejects)
	}
	if st.DiskHits != 0 {
		t.Fatalf("%d disk hits served from a fully stale dir", st.DiskHits)
	}
	sameVerdicts(t, "stale-dir vs cold", baseline, st)

	// The run replaced the stale files with fresh ones: a follow-up
	// warm run works again.
	again := diskCampaign(dir).Run()
	if again.DiskHits == 0 || again.DiskStaleRejects != 0 {
		t.Fatalf("recovery run: hits=%d staleRejects=%d", again.DiskHits, again.DiskStaleRejects)
	}
	sameVerdicts(t, "recovered-warm vs cold", baseline, again)
}
