package optfuzz

import (
	"reflect"
	"testing"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/passes"
	"tameir/internal/refine"
)

// unsoundO2 is the transform the reducer re-checks against in these
// tests: the full -O2 pipeline with the deliberately unsound fold
// enabled.
func unsoundO2() func(*ir.Func) []string {
	pcfg := passes.DefaultLegacyConfig()
	pcfg.Unsound = true
	pm := passes.O2()
	return func(f *ir.Func) []string {
		_, fired := pm.RunFuncChanged(f, pcfg)
		return fired
	}
}

// findRefuted runs a small exhaustive campaign against the unsound
// pipeline and returns the first finding's source function.
func findRefuted(t *testing.T) *ir.Func {
	t.Helper()
	sem := core.LegacyOptions(core.BranchPoisonNondet)
	pcfg := passes.DefaultLegacyConfig()
	pcfg.Unsound = true
	gen := DefaultConfig(2)
	gen.MaxFuncs = 2000
	st := Campaign{
		Gen:         gen,
		Refine:      refine.DefaultConfig(sem, sem),
		Pipeline:    passes.O2(),
		PipelineCfg: pcfg,
		Workers:     4,
	}.Run()
	if len(st.Findings) == 0 {
		t.Fatal("unsound pipeline yielded no findings to reduce")
	}
	f, err := ir.ParseFunc(st.Findings[0].Src)
	if err != nil {
		t.Fatalf("finding source does not re-parse: %v", err)
	}
	return f
}

// pad appends dead instructions to f's entry block — reducible fat a
// real finding would carry.
func pad(f *ir.Func, n int) *ir.Func {
	g := ir.CloneFunc(f)
	entry := g.Entry()
	term := entry.Terminator()
	ty := g.RetTy
	for i := 0; i < n; i++ {
		in := ir.NewInstr(ir.OpXor, ty, g.Params[0], ir.ConstInt(ty, uint64(i)&3))
		in.Nam = g.GenName("d")
		entry.InsertBefore(in, term)
	}
	return g
}

// TestReduceFindingShrinksAndPreservesVerdict is the reducer
// invariant: the output is strictly smaller, still refuted by the same
// transform, and reachable in a bounded number of accepted steps.
func TestReduceFindingShrinksAndPreservesVerdict(t *testing.T) {
	sem := core.LegacyOptions(core.BranchPoisonNondet)
	rcfg := refine.DefaultConfig(sem, sem)
	transform := unsoundO2()

	orig := findRefuted(t)
	fat := pad(orig, 4)

	// The padded candidate must itself still be a finding.
	work := ir.CloneFunc(fat)
	transform(work)
	if r := refine.Check(fat, work, rcfg); r.Status != refine.Refuted {
		t.Fatalf("padded candidate not refuted: %v", r)
	}

	rr := ReduceFinding(fat, transform, rcfg, ir.VerifyLegacy, 0)
	if rr.Steps == 0 {
		t.Fatalf("reducer made no progress on a candidate with %d dead instructions", 4)
	}
	if rr.RemovedInstrs < 4 {
		t.Fatalf("reducer removed %d instructions, want at least the 4 dead ones", rr.RemovedInstrs)
	}
	if rr.Result.Status != refine.Refuted {
		t.Fatalf("reduced finding is not refuted: %v", rr.Result)
	}
	red, err := ir.ParseFunc(rr.Src)
	if err != nil {
		t.Fatalf("reduced source does not parse: %v\n%s", err, rr.Src)
	}
	if red.NumInstrs() >= fat.NumInstrs() {
		t.Fatalf("reduced function (%d instrs) not smaller than input (%d)", red.NumInstrs(), fat.NumInstrs())
	}
	// Re-check the reduced pair from scratch: the verdict must
	// reproduce outside the reducer.
	rework := ir.CloneFunc(red)
	transform(rework)
	if r := refine.Check(red, rework, rcfg); r.Status != refine.Refuted {
		t.Fatalf("reduced finding does not reproduce: %v", r)
	}
}

// TestReduceFindingDeterministic: same input, same config, same
// reduction — twice.
func TestReduceFindingDeterministic(t *testing.T) {
	sem := core.LegacyOptions(core.BranchPoisonNondet)
	rcfg := refine.DefaultConfig(sem, sem)
	transform := unsoundO2()
	fat := pad(findRefuted(t), 3)

	a := ReduceFinding(fat, transform, rcfg, ir.VerifyLegacy, 0)
	b := ReduceFinding(fat, transform, rcfg, ir.VerifyLegacy, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("reduction not deterministic:\na: %+v\nb: %+v", a, b)
	}
}

// TestReduceRespectsMaxSteps bounds the work per finding.
func TestReduceRespectsMaxSteps(t *testing.T) {
	sem := core.LegacyOptions(core.BranchPoisonNondet)
	rcfg := refine.DefaultConfig(sem, sem)
	transform := unsoundO2()
	fat := pad(findRefuted(t), 6)

	rr := ReduceFinding(fat, transform, rcfg, ir.VerifyLegacy, 2)
	if rr.Steps > 2 {
		t.Fatalf("reducer took %d steps past maxSteps=2", rr.Steps)
	}
}
