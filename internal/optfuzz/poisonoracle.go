package optfuzz

import (
	"fmt"
	"strings"

	"tameir/internal/analysis"
	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/parallel"
	"tameir/internal/refine"
	"tameir/internal/telemetry"
)

// This file is the campaign soundness oracle for the flow-sensitive
// poison analysis: over the §6 exhaustive function space, every value
// the analysis claims NeverPoison is cross-checked against concrete
// enumeration — all input tuples (poison and, under legacy, undef
// included) times all nondeterministic resolutions — with the
// interpreter's trace hook watching what each claimed instruction
// actually evaluates to. A single claimed value that evaluates to
// poison (or undef: the lattice promises freedom from both) is a
// soundness bug in the analysis, exactly the class of silent
// miscompile precursor translation validation cannot see until a pass
// consumes the bad fact.

// PoisonOracle configures one soundness sweep. The candidate stream is
// a Source, sharded and budgeted exactly like Campaign's, so a budgeted
// oracle enumerates exactly the candidate set the validation campaign
// does — and any workload (exhaustive, mutation corpus, wide sample)
// can be swept for analysis soundness.
type PoisonOracle struct {
	// Gen is the function-space generator config (sharded like Campaign:
	// budgets split evenly with capacity reclaim).
	Gen Config
	// Source overrides the candidate stream; nil builds the exhaustive
	// source from Gen, mirroring Campaign.
	Source Source
	// Sem is the execution semantics claims are checked under.
	Sem core.Options
	// Workers bounds the shard worker pool (0 = serial).
	Workers int
	// MaxChoices/MaxFanout bound each execution's nondeterminism oracle;
	// MaxExecs bounds the resolution sweep per input tuple. Zero values
	// take the refine defaults.
	MaxChoices int
	MaxFanout  uint64
	MaxExecs   int
	// Telemetry, when non-nil, receives poison_oracle_* counters.
	Telemetry *telemetry.Registry
}

// PoisonViolation is one refuted claim: a concrete execution on which a
// statically NeverPoison instruction evaluated to poison or undef.
type PoisonViolation struct {
	Shard int
	Fn    string // full IR of the offending function
	Val   string // the claimed instruction
	Args  string // the input tuple that broke the claim
	Got   string // the deferred-UB value actually observed
}

func (v PoisonViolation) String() string {
	return fmt.Sprintf("shard %d: %%%s claimed never-poison but evaluated to %s on args (%s)\n%s",
		v.Shard, v.Val, v.Got, v.Args, v.Fn)
}

// PoisonOracleStats is the merged result of a sweep.
type PoisonOracleStats struct {
	Funcs  int    // functions enumerated
	Claims int    // NeverPoison claims checked
	Execs  uint64 // concrete executions traced
	// Incomplete counts functions whose resolution sweep hit MaxExecs;
	// their claims are checked on a prefix of the behavior space only.
	Incomplete int
	Violations []PoisonViolation
}

// Run executes the sweep and returns merged, shard-ordered stats. Like
// the campaign, the result is deterministic: the shard partition fixes
// the function order, every shard owns its oracle and environments, and
// per-shard tallies merge in shard order.
func (po PoisonOracle) Run() PoisonOracleStats {
	src := po.Source
	if src == nil {
		src = NewExhaustiveSource(po.Gen)
	}
	shards := src.Shards()
	budget := src.Budget()
	var caps []int
	if budget > 0 {
		caps = src.Capacities(budget)
	}
	budgets := shardBudgets(budget, shards, caps)

	maxChoices, maxFanout, maxExecs := po.MaxChoices, po.MaxFanout, po.MaxExecs
	if maxChoices == 0 {
		maxChoices = 16
	}
	if maxFanout == 0 {
		maxFanout = 1 << 8
	}
	if maxExecs == 0 {
		maxExecs = 1 << 14
	}

	results := parallel.MapTimed(po.Workers, shards, func(s int) PoisonOracleStats {
		if budget > 0 && budgets[s] == 0 {
			return PoisonOracleStats{}
		}
		var st PoisonOracleStats
		src.Enumerate(s, budgets[s], func(f *ir.Func) bool {
			st.Funcs++
			po.checkFunc(f, s, maxChoices, maxFanout, maxExecs, &st)
			return true
		})
		return st
	}, nil)

	var out PoisonOracleStats
	for _, r := range results {
		out.Funcs += r.Funcs
		out.Claims += r.Claims
		out.Execs += r.Execs
		out.Incomplete += r.Incomplete
		out.Violations = append(out.Violations, r.Violations...)
	}
	if po.Telemetry != nil {
		reg := po.Telemetry
		reg.Counter("poison_oracle_funcs_total", telemetry.Deterministic, "functions swept by the poison soundness oracle").Add(uint64(out.Funcs))
		reg.Counter("poison_oracle_claims_total", telemetry.Deterministic, "static NeverPoison claims cross-checked").Add(uint64(out.Claims))
		reg.Counter("poison_oracle_execs_total", telemetry.Deterministic, "concrete executions traced by the oracle").Add(out.Execs)
		reg.Counter("poison_oracle_incomplete_total", telemetry.Deterministic, "functions whose resolution sweep hit the execution cap").Add(uint64(out.Incomplete))
		reg.Counter("poison_oracle_violations_total", telemetry.Deterministic, "claims refuted by a concrete execution").Add(uint64(len(out.Violations)))
	}
	return out
}

// checkFunc analyzes one function and, when the analysis makes any
// claim, sweeps every input tuple × nondeterministic resolution with a
// tracer watching the claimed instructions.
func (po PoisonOracle) checkFunc(f *ir.Func, shard, maxChoices int, maxFanout uint64, maxExecs int, st *PoisonOracleStats) {
	facts := analysis.AnalyzePoison(f)
	claimed := make(map[*ir.Instr]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs() {
			if in.Ty.IsVoid() || in.Op.IsTerminator() {
				continue
			}
			if facts.Fact(in) == analysis.NeverPoison {
				claimed[in] = true
			}
		}
	}
	if len(claimed) == 0 {
		return
	}
	st.Claims += len(claimed)

	// Input tuples: the same candidate sets refine.Check enumerates,
	// including the deferred-UB constants — a claim must hold even when
	// every parameter is poison.
	cands := make([][]core.Value, len(f.Params))
	for i, p := range f.Params {
		cands[i], _ = refine.CandidateValues(p.Ty, po.Sem.Mode)
	}
	args := make([]core.Value, len(f.Params))
	idx := make([]int, len(f.Params))
	for {
		for i, k := range idx {
			args[i] = cands[i][k]
		}
		po.sweepArgs(f, shard, claimed, args, maxChoices, maxFanout, maxExecs, st)

		carry := len(idx) - 1
		for ; carry >= 0; carry-- {
			idx[carry]++
			if idx[carry] < len(cands[carry]) {
				break
			}
			idx[carry] = 0
		}
		if carry < 0 {
			break
		}
	}
}

// sweepArgs runs one input tuple under every nondeterministic
// resolution the enumeration oracle can produce, recording the first
// violated claim per execution.
func (po PoisonOracle) sweepArgs(f *ir.Func, shard int, claimed map[*ir.Instr]bool, args []core.Value, maxChoices int, maxFanout uint64, maxExecs int, st *PoisonOracleStats) {
	o := core.NewEnumOracle(maxChoices, maxFanout)
	execs := 0
	for {
		if execs >= maxExecs {
			st.Incomplete++
			return
		}
		execs++
		st.Execs++
		o.Reset()
		env, err := core.NewEnv(f.Parent(), o, po.Sem)
		if err != nil {
			// Unsupported module shape: nothing to check concretely.
			return
		}
		env.Trace = func(depth int, in *ir.Instr, v core.Value) {
			if depth != 1 || !claimed[in] {
				return
			}
			if !v.IsConcrete() {
				// Claims promise freedom from poison AND undef, so any
				// non-concrete observation refutes.
				claimed[in] = false // report each claim at most once
				st.Violations = append(st.Violations, PoisonViolation{
					Shard: shard,
					Fn:    f.String(),
					Val:   in.Name(),
					Args:  formatArgs(args),
					Got:   v.String(),
				})
			}
		}
		// The outcome kind is irrelevant: a UB or timeout execution's
		// traced prefix still happened, and claims must hold on it.
		env.RunInterp(f, args)
		if !o.Next() {
			return
		}
	}
}

func formatArgs(args []core.Value) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}
