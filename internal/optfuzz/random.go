package optfuzz

import (
	"fmt"
	"math/rand"

	"tameir/internal/ir"
)

// RandomConfig bounds the randomized CFG generator.
type RandomConfig struct {
	Width       uint
	NumParams   int
	MaxBlocks   int
	MaxInstrs   int // per block
	AllowUndef  bool
	AllowPoison bool
	AllowFreeze bool
}

// DefaultRandomConfig is sized for quick validator runs.
func DefaultRandomConfig() RandomConfig {
	return RandomConfig{
		Width:       2,
		NumParams:   2,
		MaxBlocks:   4,
		MaxInstrs:   3,
		AllowUndef:  true,
		AllowFreeze: true,
	}
}

// Random generates a random function with control flow: a DAG of
// blocks with conditional branches and phi nodes at merge points
// (loops are avoided so refinement enumeration stays small).
func Random(rng *rand.Rand, cfg RandomConfig) *ir.Func {
	ty := ir.Int(cfg.Width)
	params := make([]*ir.Param, cfg.NumParams)
	for i := range params {
		params[i] = ir.NewParam(fmt.Sprintf("p%d", i), ty)
	}
	f := ir.NewFunc("rf", ty, params...)

	nblocks := 1 + rng.Intn(cfg.MaxBlocks)
	blocks := make([]*ir.Block, nblocks)
	for i := range blocks {
		blocks[i] = f.NewBlock(fmt.Sprintf("b%d", i))
	}

	// Values available per block: parameters and constants everywhere;
	// instruction results only in the defining block and blocks it
	// branches to directly (kept simple and always dominance-correct:
	// we only use same-block defs plus function-level values).
	baseVals := []ir.Value{}
	for _, p := range params {
		baseVals = append(baseVals, p)
	}
	for v := uint64(0); v < 1<<cfg.Width; v++ {
		baseVals = append(baseVals, ir.ConstInt(ty, v))
	}
	if cfg.AllowUndef {
		baseVals = append(baseVals, ir.NewUndef(ty))
	}
	if cfg.AllowPoison {
		baseVals = append(baseVals, ir.NewPoison(ty))
	}

	binops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpUDiv, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl}

	for bi, b := range blocks {
		local := append([]ir.Value(nil), baseVals...)
		pick := func() ir.Value { return local[rng.Intn(len(local))] }
		n := rng.Intn(cfg.MaxInstrs + 1)
		for k := 0; k < n; k++ {
			var in *ir.Instr
			switch r := rng.Intn(10); {
			case r < 6:
				op := binops[rng.Intn(len(binops))]
				in = ir.NewInstr(op, ty, pick(), pick())
				if rng.Intn(3) == 0 && (op == ir.OpAdd || op == ir.OpSub || op == ir.OpMul) {
					in.Attrs = ir.NSW
				}
			case r < 8:
				cmp := ir.NewInstr(ir.OpICmp, ir.I1, pick(), pick())
				cmp.Pred = ir.Pred(rng.Intn(10))
				cmp.Nam = f.GenName("c")
				b.Append(cmp)
				in = ir.NewInstr(ir.OpSelect, ty, cmp, pick(), pick())
			case cfg.AllowFreeze:
				in = ir.NewInstr(ir.OpFreeze, ty, pick())
			default:
				in = ir.NewInstr(ir.OpAdd, ty, pick(), pick())
			}
			in.Nam = f.GenName("v")
			b.Append(in)
			local = append(local, in)
		}
		// Terminator: branch forward or return.
		if bi == nblocks-1 || rng.Intn(3) == 0 {
			ret := ir.NewInstr(ir.OpRet, ir.Void, local[rng.Intn(len(local))])
			b.Append(ret)
			continue
		}
		// Forward edges only (acyclic).
		t1 := blocks[bi+1+rng.Intn(nblocks-bi-1)]
		if rng.Intn(2) == 0 {
			br := ir.NewInstr(ir.OpBr, ir.Void)
			br.AddBlockArg(t1)
			b.Append(br)
		} else {
			t2 := blocks[bi+1+rng.Intn(nblocks-bi-1)]
			cmp := ir.NewInstr(ir.OpICmp, ir.I1, local[rng.Intn(len(local))], local[rng.Intn(len(local))])
			cmp.Pred = ir.Pred(rng.Intn(10))
			cmp.Nam = f.GenName("bc")
			// Insert before the terminator we are about to add.
			b.Append(cmp)
			br := ir.NewInstr(ir.OpBr, ir.Void, cmp)
			br.AddBlockArg(t1)
			br.AddBlockArg(t2)
			b.Append(br)
		}
	}
	// Blocks with no predecessors (other than entry) are unreachable;
	// keep them — passes must cope. But unreachable blocks may lack
	// proper phi structure; our generator adds no phis, so the
	// function is structurally valid as-is.
	return f
}
