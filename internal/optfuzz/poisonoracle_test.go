package optfuzz

import (
	"testing"

	"tameir/internal/core"
	"tameir/internal/ir"
	"tameir/internal/passes"
	"tameir/internal/refine"
	"tameir/internal/telemetry"
)

// TestPoisonOracleSoundnessFreeze sweeps the entire 1-instruction
// freeze-dialect space: every static NeverPoison claim must survive
// every input tuple (poison parameters included) under every
// nondeterministic resolution. This is acceptance criterion (2) of the
// poison-analysis PR in miniature; `tame-fuzz -poison-oracle` runs the
// same sweep from CI.
func TestPoisonOracleSoundnessFreeze(t *testing.T) {
	gen := DefaultConfig(1)
	gen.AllowUndef = false // undef is not part of the freeze dialect
	gen.AllowPoison = true
	gen.MaxFuncs = 0 // unbounded: the whole 1-instruction space

	reg := telemetry.NewRegistry()
	st := PoisonOracle{Gen: gen, Sem: core.FreezeOptions(), Workers: 2, Telemetry: reg}.Run()
	if st.Funcs == 0 {
		t.Fatal("oracle enumerated no functions")
	}
	if st.Claims == 0 {
		t.Fatal("analysis made no NeverPoison claims over the whole space; the oracle tested nothing")
	}
	if st.Execs == 0 {
		t.Fatal("oracle ran no executions")
	}
	for _, v := range st.Violations {
		t.Errorf("soundness violation: %s", v)
	}
	snap := reg.Snapshot()
	for _, name := range []string{"poison_oracle_funcs_total", "poison_oracle_claims_total", "poison_oracle_execs_total"} {
		if s, ok := snap.Get(name); !ok || s.Value == 0 {
			t.Errorf("counter %s = %d (present %v), want > 0", name, s.Value, ok)
		}
	}
	if s, ok := snap.Get("poison_oracle_violations_total"); !ok || s.Value != 0 {
		t.Errorf("poison_oracle_violations_total = %d (present %v), want 0", s.Value, ok)
	}
}

// TestPoisonOracleSoundnessLegacy repeats the sweep under legacy
// semantics with undef inputs: NeverPoison also promises undef-freedom
// (the lattice conflates the two on purpose), so an undef observation
// on a claimed value must refute — and must never occur.
func TestPoisonOracleSoundnessLegacy(t *testing.T) {
	gen := DefaultConfig(2)
	gen.AllowUndef = true
	gen.MaxFuncs = 1500

	st := PoisonOracle{Gen: gen, Sem: core.LegacyOptions(core.BranchPoisonNondet), Workers: 2}.Run()
	if st.Funcs == 0 || st.Execs == 0 {
		t.Fatalf("oracle swept %d funcs over %d execs, want both > 0", st.Funcs, st.Execs)
	}
	for _, v := range st.Violations {
		t.Errorf("soundness violation: %s", v)
	}
}

// TestPoisonOracleDeterministicAcrossWorkers pins the oracle to the
// campaign machinery's contract: worker count affects wall time only.
func TestPoisonOracleDeterministicAcrossWorkers(t *testing.T) {
	gen := DefaultConfig(1)
	gen.AllowUndef = false
	gen.AllowPoison = true
	gen.MaxFuncs = 200

	po := PoisonOracle{Gen: gen, Sem: core.FreezeOptions()}
	serial := po.Run()
	po.Workers = 4
	parallel := po.Run()
	if serial.Funcs != parallel.Funcs || serial.Claims != parallel.Claims ||
		serial.Execs != parallel.Execs || len(serial.Violations) != len(parallel.Violations) {
		t.Fatalf("worker count changed the sweep: serial %+v, parallel %+v", serial, parallel)
	}
}

// TestPoisonOracleExplicitSourceMatchesNil: the oracle's nil-Source
// default must be the exhaustive adapter, so an explicit
// ExhaustiveSource sweeps the identical candidate set.
func TestPoisonOracleExplicitSourceMatchesNil(t *testing.T) {
	gen := DefaultConfig(1)
	gen.AllowUndef = false
	gen.AllowPoison = true
	gen.MaxFuncs = 200

	sem := core.FreezeOptions()
	implicit := PoisonOracle{Gen: gen, Sem: sem, Workers: 2}.Run()
	explicit := PoisonOracle{Gen: gen, Source: NewExhaustiveSource(gen), Sem: sem, Workers: 2}.Run()
	if implicit.Funcs != explicit.Funcs || implicit.Claims != explicit.Claims ||
		implicit.Execs != explicit.Execs || len(implicit.Violations) != len(explicit.Violations) {
		t.Fatalf("explicit source changed the sweep: implicit %+v, explicit %+v", implicit, explicit)
	}
}

// TestFreezeElimCampaignTranslationValidation is acceptance criterion
// (3): every freeze-elim rewrite over an exhaustive freeze-heavy
// campaign slice must itself validate as a refinement via refine.Check
// — and the pass must actually fire, so a silently inert pass cannot
// pass the test.
func TestFreezeElimCampaignTranslationValidation(t *testing.T) {
	gen := DefaultConfig(2)
	gen.AllowUndef = false
	gen.AllowPoison = true
	// Restrict the menu so the budget reaches freeze-rooted functions
	// (the full menu's shard budgets never leave the binop prefixes).
	gen.Opcodes = []ir.Op{ir.OpFreeze, ir.OpAdd, ir.OpSelect}
	gen.MaxFuncs = 3000

	sem := core.FreezeOptions()
	pm, err := passes.NewPassManager("freeze-elim")
	if err != nil {
		t.Fatal(err)
	}
	st := Campaign{
		Gen:         gen,
		Refine:      refine.DefaultConfig(sem, sem),
		Pipeline:    pm.Instrument(),
		PipelineCfg: passes.DefaultFreezeConfig(),
		Workers:     2,
	}.Run()
	if st.Funcs == 0 {
		t.Fatal("campaign checked no functions")
	}
	for _, f := range st.Findings {
		t.Errorf("freeze-elim rewrite refuted:\nsrc:\n%s\ntgt:\n%s\n%+v", f.Src, f.Tgt, f.Result)
	}
	if st.Opt == nil {
		t.Fatal("instrumented pipeline campaign returned no Opt stats")
	}
	if removed := st.Opt.FreezeElimRemoved(); removed == 0 {
		t.Fatal("freeze-elim removed no freezes over a freeze-heavy space; the TV test exercised nothing")
	}
}

// TestVerifyEachO2Campaign runs a small freeze-dialect O2 campaign with
// the full -verify-each battery armed between every pass step. Any
// verifier, SSA, or analysis cache-coherence failure panics; the
// failure counter must end at zero.
func TestVerifyEachO2Campaign(t *testing.T) {
	gen := DefaultConfig(2)
	gen.AllowUndef = false
	gen.AllowPoison = true
	gen.MaxFuncs = 400

	sem := core.FreezeOptions()
	pm := passes.O2().Instrument()
	pm.VerifyEach = true
	st := Campaign{
		Gen:         gen,
		Refine:      refine.DefaultConfig(sem, sem),
		Pipeline:    pm,
		PipelineCfg: passes.DefaultFreezeConfig(),
		Workers:     2,
	}.Run()
	if st.Funcs == 0 {
		t.Fatal("campaign checked no functions")
	}
	if st.Opt == nil {
		t.Fatal("instrumented pipeline campaign returned no Opt stats")
	}
	if fails := st.Opt.VerifyEachFailures(); fails != 0 {
		t.Fatalf("verify-each recorded %d failures", fails)
	}
	if st.Refuted != 0 {
		for _, f := range st.Findings {
			t.Errorf("refuted:\nsrc:\n%s\ntgt:\n%s", f.Src, f.Tgt)
		}
	}
}
