package optfuzz

import (
	"tameir/internal/analysis"
	"tameir/internal/ir"
	"tameir/internal/refine"
)

// The automatic finding reducer: greedy, deterministic, verdict-
// preserving shrinking of refuted candidates. A campaign finding is
// whatever function the workload happened to stumble on — often
// carrying instructions, branches and operands that play no part in
// the miscompilation. The reducer deletes them one edit at a time,
// re-checking the refinement verdict after every edit and keeping only
// edits that (a) leave the function verifier-valid and (b) keep the
// transform refuted. The result is the locally minimal counterexample
// a human wants to read.

// DefaultReduceMaxSteps bounds accepted shrink steps per finding.
const DefaultReduceMaxSteps = 64

// ReduceResult is the reducer's outcome for one finding.
type ReduceResult struct {
	// Src / Tgt / ChangedBy / Result describe the reduced finding: the
	// minimized source, what the transform produced on it, which passes
	// fired, and the (still Refuted) verdict. All empty/zero when Steps
	// is 0 — the caller then keeps the original finding untouched.
	Src       string
	Tgt       string
	ChangedBy []string
	Result    refine.Result

	// Steps counts accepted shrink edits; Attempts counts candidate
	// edits that were re-checked (accepted or not); RemovedInstrs is
	// the net instruction-count reduction.
	Steps         int
	Attempts      int
	RemovedInstrs int
}

// reduceEdit is one candidate shrink, addressed by coordinates into
// the current function's (block, instruction) grid so it can be
// replayed on a fresh clone.
type reduceEdit struct {
	kind  int // editDelete | editDropSucc | editZeroOp
	block int // block index in f.Blocks
	instr int // instruction index in block.Instrs() (editDelete/editZeroOp)
	arg   int // editDelete: replacement (arg index, or -1 = zero const);
	//           editDropSucc: successor to keep; editZeroOp: operand index
}

const (
	editDelete = iota
	editDropSucc
	editZeroOp
)

// reduceMeasure is the strictly decreasing termination measure:
// (instructions, conditional branches, non-zero-constant operands),
// compared lexicographically. Every edit kind strictly shrinks it —
// deletion drops an instruction, DropSuccessor drops a conditional
// branch without adding instructions, operand zeroing turns a live
// operand into a zero constant — so greedy reduction terminates even
// without the step bound.
func reduceMeasure(f *ir.Func) [3]int {
	var m [3]int
	for _, b := range f.Blocks {
		for _, in := range b.Instrs() {
			m[0]++
			if in.IsConditionalBr() {
				m[1]++
			}
			for _, a := range in.Args() {
				if c, ok := a.(*ir.Const); ok && c.IsZero() {
					continue
				}
				m[2]++
			}
		}
	}
	return m
}

func measureLess(a, b [3]int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// reduceEdits enumerates every candidate edit of f in deterministic
// order: deletions first (they shrink fastest), then branch drops,
// then operand zeroing. Coordinates index f's current shape.
func reduceEdits(f *ir.Func) []reduceEdit {
	var edits []reduceEdit
	for bi, b := range f.Blocks {
		for ii, in := range b.Instrs() {
			if in.Op.IsTerminator() {
				continue
			}
			if in.NumUses() == 0 {
				edits = append(edits, reduceEdit{kind: editDelete, block: bi, instr: ii, arg: -1})
				continue
			}
			for ai, a := range in.Args() {
				if !a.Type().Equal(in.Ty) || a == ir.Value(in) {
					continue
				}
				// A phi's incoming defs only dominate their edges, not
				// the phi's uses — replacing with one would break SSA.
				// Params and constants dominate everything and are fine.
				if _, isInstr := a.(*ir.Instr); isInstr && in.Op == ir.OpPhi {
					continue
				}
				edits = append(edits, reduceEdit{kind: editDelete, block: bi, instr: ii, arg: ai})
			}
			if in.Ty.IsInt() {
				edits = append(edits, reduceEdit{kind: editDelete, block: bi, instr: ii, arg: -1})
			}
		}
	}
	for bi, b := range f.Blocks {
		if t := b.Terminator(); t != nil && t.IsConditionalBr() {
			edits = append(edits,
				reduceEdit{kind: editDropSucc, block: bi, arg: 0},
				reduceEdit{kind: editDropSucc, block: bi, arg: 1})
		}
	}
	for bi, b := range f.Blocks {
		for ii, in := range b.Instrs() {
			for ai, a := range in.Args() {
				if c, ok := a.(*ir.Const); ok && c.IsZero() {
					continue
				}
				if a.Type().IsInt() {
					edits = append(edits, reduceEdit{kind: editZeroOp, block: bi, instr: ii, arg: ai})
				}
			}
		}
	}
	return edits
}

// applyEdit replays e on f (a private clone), returning false when the
// edit no longer applies. Unreachable blocks left behind by a branch
// drop are swept immediately so the verifier sees a closed CFG.
func applyEdit(f *ir.Func, e reduceEdit) bool {
	if e.block >= len(f.Blocks) {
		return false
	}
	b := f.Blocks[e.block]
	switch e.kind {
	case editDropSucc:
		if !ir.DropSuccessor(b, e.arg) {
			return false
		}
	case editDelete, editZeroOp:
		instrs := b.Instrs()
		if e.instr >= len(instrs) {
			return false
		}
		in := instrs[e.instr]
		if e.kind == editZeroOp {
			if e.arg >= in.NumArgs() || !in.Arg(e.arg).Type().IsInt() {
				return false
			}
			in.SetArg(e.arg, ir.ConstInt(in.Arg(e.arg).Type(), 0))
			return true
		}
		if in.Op.IsTerminator() {
			return false
		}
		var repl ir.Value
		if in.NumUses() > 0 {
			switch {
			case e.arg >= 0 && e.arg < in.NumArgs() && in.Arg(e.arg).Type().Equal(in.Ty):
				if _, isInstr := in.Arg(e.arg).(*ir.Instr); isInstr && in.Op == ir.OpPhi {
					return false
				}
				repl = in.Arg(e.arg)
			case e.arg < 0 && in.Ty.IsInt():
				repl = ir.ConstInt(in.Ty, 0)
			default:
				return false
			}
		}
		ir.DeleteInstr(in, repl)
	}
	ir.RemoveUnreachableBlocks(f)
	return true
}

// ReduceFinding greedily shrinks the refuted candidate src: it tries
// every edit in deterministic order, accepts the first one whose
// result is verifier-valid, strictly smaller under the termination
// measure, and still refuted by transform under rcfg, then restarts
// from the shrunken function. It stops when no edit survives or after
// maxSteps accepted edits (0 means DefaultReduceMaxSteps).
//
// Determinism: edits are enumerated from the function's canonical
// shape and re-checked with the same deterministic checker the
// campaign uses, so the reduced finding is a pure function of
// (src, transform, rcfg) — worker counts and cache state cannot
// change it. The verdict is preserved by construction: every accepted
// step's Result has Status == Refuted.
//
// src is not mutated; transform must be the same (deterministic)
// transform that produced the original finding. mode selects the IR
// dialect to re-verify shrunken candidates under — the campaign
// passes VerifyLegacy for legacy-semantics runs, VerifyFreeze
// otherwise.
func ReduceFinding(src *ir.Func, transform func(*ir.Func) []string, rcfg refine.Config, mode ir.VerifyMode, maxSteps int) ReduceResult {
	if maxSteps <= 0 {
		maxSteps = DefaultReduceMaxSteps
	}
	cur := ir.CloneFunc(src)
	curM := reduceMeasure(cur)
	var out ReduceResult
	for out.Steps < maxSteps {
		accepted := false
		for _, e := range reduceEdits(cur) {
			cand := ir.CloneFunc(cur)
			if !applyEdit(cand, e) {
				continue
			}
			candM := reduceMeasure(cand)
			if !measureLess(candM, curM) {
				continue
			}
			if ir.Verify(cand, mode) != nil || analysis.VerifySSA(cand) != nil {
				continue
			}
			work := ir.CloneFunc(cand)
			changedBy := transform(work)
			out.Attempts++
			r := refine.Check(cand, work, rcfg)
			if r.Status != refine.Refuted {
				continue
			}
			out.RemovedInstrs += curM[0] - candM[0]
			cur, curM = cand, candM
			out.Src, out.Tgt = cand.String(), work.String()
			out.ChangedBy, out.Result = changedBy, r
			out.Steps++
			accepted = true
			break
		}
		if !accepted {
			break
		}
	}
	return out
}
