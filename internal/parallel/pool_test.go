package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.NumCPU() {
		t.Errorf("Workers(0) = %d, want NumCPU=%d", got, runtime.NumCPU())
	}
	if got := Workers(-5); got != runtime.NumCPU() {
		t.Errorf("Workers(-5) = %d, want NumCPU=%d", got, runtime.NumCPU())
	}
}

func TestDoRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 250
		var counts [n]atomic.Int32
		Do(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestDoZeroTasks(t *testing.T) {
	Do(4, 0, func(i int) { t.Fatal("task ran") })
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		got := Map(workers, 64, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: Map[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapInlineWhenSerial(t *testing.T) {
	// workers=1 must run on the calling goroutine, in index order.
	var order []int
	Map(1, 5, func(i int) int { order = append(order, i); return i })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial Map visited %v", order)
		}
	}
}
