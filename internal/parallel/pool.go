// Package parallel provides the bounded worker pool and deterministic
// result merging behind the fuzz-and-validate pipeline.
//
// The design constraint, inherited from the §6 experiment, is that a
// parallel campaign must be a pure reordering of the serial one: same
// work items, same per-item results, results observed in the same
// order. The pool therefore never shares mutable state between tasks —
// each task writes only its own result slot — and Map returns results
// in task-index order no matter how the scheduler interleaved the
// workers.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count setting: values below 1 mean one
// worker per CPU.
func Workers(n int) int {
	if n < 1 {
		return runtime.NumCPU()
	}
	return n
}

// Do runs task(0..n-1) on up to workers goroutines and blocks until
// all have completed. Tasks are claimed in index order from a shared
// atomic counter, so long-running early shards overlap with later
// ones. With an effective worker count of 1 everything runs inline on
// the calling goroutine — the serial path has zero scheduling
// overhead, which keeps `-workers 1` an honest baseline.
func Do(workers, n int, task func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				task(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn(0..n-1) on the pool and returns the results in index
// order: the merge is deterministic regardless of how the workers were
// scheduled. Each task writes only its own slot, so no locking is
// needed and `go test -race` stays quiet.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	Do(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}
