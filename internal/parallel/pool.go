// Package parallel provides the bounded worker pool and deterministic
// result merging behind the fuzz-and-validate pipeline.
//
// The design constraint, inherited from the §6 experiment, is that a
// parallel campaign must be a pure reordering of the serial one: same
// work items, same per-item results, results observed in the same
// order. The pool therefore never shares mutable state between tasks —
// each task writes only its own result slot — and Map returns results
// in task-index order no matter how the scheduler interleaved the
// workers.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tameir/internal/telemetry"
)

// Workers normalizes a worker-count setting: values below 1 mean one
// worker per CPU.
func Workers(n int) int {
	if n < 1 {
		return runtime.NumCPU()
	}
	return n
}

// Do runs task(0..n-1) on up to workers goroutines and blocks until
// all have completed. Tasks are claimed in index order from a shared
// atomic counter, so long-running early shards overlap with later
// ones. With an effective worker count of 1 everything runs inline on
// the calling goroutine — the serial path has zero scheduling
// overhead, which keeps `-workers 1` an honest baseline.
func Do(workers, n int, task func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				task(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn(0..n-1) on the pool and returns the results in index
// order: the merge is deterministic regardless of how the workers were
// scheduled. Each task writes only its own slot, so no locking is
// needed and `go test -race` stays quiet.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	Do(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// PoolMetrics summarizes one instrumented pool run: how many tasks ran
// on how many workers, aggregate worker busy time, the run's wall
// time, and the queue depth observed at each claim. Everything except
// Tasks is scheduling-dependent by nature.
type PoolMetrics struct {
	Workers    int
	Tasks      uint64
	BusyNS     uint64
	WallNS     uint64
	QueueDepth telemetry.LocalHist
}

// Add folds o into m (for campaigns that run several pool phases).
func (m *PoolMetrics) Add(o *PoolMetrics) {
	if m.Workers < o.Workers {
		m.Workers = o.Workers
	}
	m.Tasks += o.Tasks
	m.BusyNS += o.BusyNS
	m.WallNS += o.WallNS
	for i, c := range o.QueueDepth.Buckets {
		m.QueueDepth.Buckets[i] += c
	}
	m.QueueDepth.Sum += o.QueueDepth.Sum
}

// Publish folds the counters into reg. Tasks is deterministic (the
// work partition is fixed); the rest is scheduling.
func (m *PoolMetrics) Publish(reg *telemetry.Registry) {
	if m == nil || reg == nil {
		return
	}
	reg.Counter("pool_tasks_total", telemetry.Deterministic, "tasks run on the worker pool").Add(m.Tasks)
	reg.Gauge("pool_workers", telemetry.Scheduling, "worker goroutines in the largest pool run").Set(int64(m.Workers))
	reg.Counter("pool_busy_ns_total", telemetry.Scheduling, "aggregate worker busy time").Add(m.BusyNS)
	reg.Counter("pool_wall_ns_total", telemetry.Scheduling, "pool run wall time").Add(m.WallNS)
	var counts [telemetry.HistBuckets]uint64
	var n uint64
	for i, c := range m.QueueDepth.Buckets {
		counts[i] = c
		n += c
	}
	if n > 0 {
		reg.Histogram("pool_queue_depth", telemetry.Scheduling, "unclaimed tasks at each claim").
			AddBuckets(&counts, m.QueueDepth.Sum)
	}
}

// MapTimed is Map plus pool instrumentation into pm (which may be nil;
// the timing shims then cost two clock reads per task). Worker
// utilization is BusyNS / (Workers × WallNS).
func MapTimed[T any](workers, n int, fn func(i int) T, pm *PoolMetrics) []T {
	if pm == nil {
		return Map(workers, n, fn)
	}
	out := make([]T, n)
	w := Workers(workers)
	if w > n {
		w = n
	}
	pm.Workers = w
	pm.Tasks += uint64(n)
	start := time.Now()
	var claimed atomic.Int64
	var busy, depthSum atomic.Uint64
	var depths [telemetry.HistBuckets]atomic.Uint64
	Do(workers, n, func(i int) {
		depth := uint64(0)
		if d := int64(n) - claimed.Add(1); d > 0 {
			depth = uint64(d)
		}
		depths[telemetry.BucketOf(depth)].Add(1)
		depthSum.Add(depth)
		t0 := time.Now()
		out[i] = fn(i)
		busy.Add(uint64(time.Since(t0)))
	})
	for i := range depths {
		pm.QueueDepth.Buckets[i] += depths[i].Load()
	}
	pm.QueueDepth.Sum += depthSum.Load()
	pm.BusyNS += busy.Load()
	pm.WallNS += uint64(time.Since(start))
	return out
}
