module tameir

go 1.22
